"""Telemetry: hierarchical trace spans, metrics, and pluggable sinks.

The observability layer under the future query server.  Three pieces:

* :mod:`repro.telemetry.spans` — a :class:`Tracer` producing hierarchical
  :class:`Span` trees (monotonic ``perf_counter_ns`` timestamps, attributes,
  status, ambient current-span via ``contextvars``), a
  :class:`SpanBuffer` for shard workers whose records are remapped into the
  coordinator's trace at exchange time, and the zero-overhead
  :data:`NOOP_TRACER` the engine defaults to.
* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges and fixed-bucket histograms, aggregating across
  connections and shards, with stable-snapshot, Prometheus-text and JSON
  exporters.
* :mod:`repro.telemetry.sinks` — pluggable :class:`SpanSink`\\ s (in-memory
  ring buffer, JSON-lines file, stderr slow-query log).

Layering rule: engine-core modules (``core``, ``engine``, ``incremental``,
``parallel``, ``relational``) may import ``spans``/``metrics``/``config``
but never ``sinks`` — sinks are user-facing policy, wired in through
``EngineConfig.with_(telemetry=...)``.  CI greps for violations.

Quickstart::

    from repro import Database, EngineConfig
    from repro.telemetry import tracing

    telemetry = tracing(slow_query_seconds=0.5)
    db = Database(program, EngineConfig().with_(telemetry=telemetry))
    with db.connect() as conn:
        result = conn.query("path")
        print(result.trace().render())      # the span tree of this query
    print(db.metrics()["queries_total"])    # aggregated across connections
    print(db.metrics_prometheus())          # Prometheus text exposition
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.sinks import (
    JsonLinesSink,
    RingBufferSink,
    SlowQueryLog,
    SpanSink,
    format_slow_query,
    query_summary_rows,
)
from repro.telemetry.spans import (
    NOOP_TRACER,
    Span,
    SpanBuffer,
    Trace,
    Tracer,
    current_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NOOP_TRACER",
    "RingBufferSink",
    "SlowQueryLog",
    "Span",
    "SpanBuffer",
    "SpanSink",
    "TelemetryConfig",
    "Trace",
    "Tracer",
    "current_span",
    "format_slow_query",
    "query_summary_rows",
    "tracing",
]


def tracing(
    ring: int = 256,
    jsonl_path: Optional[str] = None,
    slow_query_seconds: Optional[float] = None,
    stream=None,
) -> TelemetryConfig:
    """A ready-to-use :class:`TelemetryConfig` with the common sinks.

    Always includes a :class:`RingBufferSink` of ``ring`` traces (reachable
    as ``config.ring`` for post-hoc inspection); ``jsonl_path`` adds a
    JSON-lines file sink, ``slow_query_seconds`` a slow-query log writing a
    single structured line per over-threshold query to ``stream`` (stderr
    by default).
    """
    sinks: list = [RingBufferSink(capacity=ring)]
    if jsonl_path is not None:
        sinks.append(JsonLinesSink(jsonl_path))
    if slow_query_seconds is not None:
        sinks.append(SlowQueryLog(slow_query_seconds, stream=stream))
    return TelemetryConfig(sinks=tuple(sinks))

"""TelemetryConfig: the one knob the engine layers see.

``EngineConfig.with_(telemetry=TelemetryConfig(...))`` (or the
:func:`repro.telemetry.tracing` convenience constructor) switches a
database/session from the default zero-overhead :data:`NOOP_TRACER` to a
live :class:`Tracer` + :class:`MetricsRegistry` pair.

This module deliberately does not import :mod:`repro.telemetry.sinks` —
sinks are user-facing policy, passed in already constructed, so engine-core
modules can import this one without dragging sink code in (the CI grep
guard enforces the same rule on the core packages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NOOP_TRACER, Tracer


@dataclass(frozen=True)
class TelemetryConfig:
    """Tracing + metrics wiring for one database (or standalone session).

    ``enabled=False`` keeps the metrics registry live but replaces the
    tracer with the no-op singleton — the configuration benchmarked by the
    "noop" row of ``bench/telemetry.py``.
    """

    enabled: bool = True
    sinks: Tuple[object, ...] = ()
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    slow_query_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.metrics is None:
            object.__setattr__(self, "metrics", MetricsRegistry())
        if self.tracer is None:
            tracer = Tracer(sinks=self.sinks) if self.enabled else NOOP_TRACER
            object.__setattr__(self, "tracer", tracer)

    @property
    def ring(self):
        """The first ring-buffer sink, if any (duck-typed: has ``traces``)."""
        for sink in self.sinks:
            if hasattr(sink, "traces"):
                return sink
        return None


def tracer_of(telemetry: Optional[TelemetryConfig]):
    """The tracer for a possibly-absent telemetry config (no-op default)."""
    if telemetry is None or not telemetry.enabled:
        return NOOP_TRACER
    return telemetry.tracer


def metrics_of(telemetry: Optional[TelemetryConfig]) -> MetricsRegistry:
    """The registry for a possibly-absent config (fresh private default)."""
    if telemetry is None or telemetry.metrics is None:
        return MetricsRegistry()
    return telemetry.metrics

"""Metrics: named counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` aggregates across every connection (and, via
profile folding, every shard) of a :class:`~repro.api.database.Database`.
Instruments are keyed by ``(name, sorted label items)`` — asking for the
same name+labels twice returns the same instrument, so concurrent
connections share counters instead of shadowing each other.

The registry folds :class:`~repro.core.profile.RuntimeProfile` snapshots in
through :meth:`MetricsRegistry.absorb_profile`, so the ``explain()`` counters
and the metrics surface cannot drift: both are views of the same profile.

Exporters: :meth:`MetricsRegistry.snapshot` (stable plain dict),
:meth:`MetricsRegistry.to_prometheus` (text exposition format) and
:meth:`MetricsRegistry.to_json`.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]

#: Default latency buckets (seconds) — sub-millisecond through 30 s.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_suffix(labels: Tuple[Tuple[str, Any], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...],
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def export(self) -> Any:
        return self._value


class Gauge:
    """A point-in-time value that can move either way."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...],
                 lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def export(self) -> Any:
        return self._value


class Histogram:
    """Fixed-bucket histogram: cumulative counts per upper bound, sum, count."""

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_sum",
                 "_count")

    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...],
                 lock: threading.Lock,
                 buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self._lock = lock
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation over the buckets.

        The standard fixed-bucket estimator (what Prometheus'
        ``histogram_quantile`` computes server-side): find the bucket the
        target rank falls into and interpolate linearly between its bounds.
        Observations beyond the last bound clamp to it (the ``+Inf`` bucket
        has no width to interpolate over); an empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        count = self._count
        if count == 0:
            return 0.0
        target = q * count
        if target == 0:
            return 0.0
        previous_cumulative = 0
        lower = 0.0
        for bound, cumulative in zip(self.buckets, self._counts):
            if cumulative >= target:
                in_bucket = cumulative - previous_cumulative
                if in_bucket <= 0:  # pragma: no cover - defensive
                    return bound
                fraction = (target - previous_cumulative) / in_bucket
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            previous_cumulative = cumulative
            lower = bound
        return self.buckets[-1]

    def export(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                repr(bound): count
                for bound, count in zip(self.buckets, self._counts)
            },
        }


class MetricsRegistry:
    """The shared instrument store behind ``Database.metrics()``.

    Thread-safe; instruments share one registry lock (updates are short
    increments, contention is negligible next to evaluation work).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[LabelKey, Any] = {}
        # Gauges derived from absorbed profiles are set, not accumulated, so
        # re-absorbing a lifetime profile stays idempotent for them.

    # -- instrument access -------------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key: LabelKey = (name, tuple(sorted(labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], self._lock, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- profile folding ---------------------------------------------------------

    def absorb_profile(self, profile) -> None:
        """Fold one :class:`RuntimeProfile`'s deltas into the registry.

        Counter-like profile fields are *added* (callers pass per-update
        profiles, or per-evaluation ones, never the same snapshot twice);
        size-like fields become gauges and are *set*.
        """
        iterations = getattr(profile, "iterations", ())
        if iterations:
            self.counter("engine_iterations_total").inc(len(iterations))
            self.counter("rows_derived_total").inc(
                sum(record.promoted for record in iterations)
            )
        reorders = getattr(profile, "reorders", ())
        if reorders:
            self.counter("reorders_total").inc(len(reorders))
            self.counter("reorders_changed_total").inc(
                sum(1 for record in reorders if record.decision.changed)
            )
        compile_events = getattr(profile, "compile_events", ())
        if compile_events:
            self.counter("compilations_total").inc(len(compile_events))
            self.counter("compile_seconds_total").inc(
                sum(event.seconds for event in compile_events)
            )
        sources = getattr(profile, "sources", None)
        if sources is not None:
            for source in ("interpreted", "compiled", "vectorized"):
                count = getattr(sources, source, 0)
                if count:
                    self.counter("subqueries_total", source=source).inc(count)
        for kind, count in getattr(profile, "block_joins", {}).items():
            if count:
                self.counter("vectorized_batches_total", kind=kind).inc(count)
        for relation, rows in getattr(profile, "result_sizes", {}).items():
            self.gauge("relation_rows", relation=relation).set(rows)
        symbol_stats = getattr(profile, "symbol_stats", None) or {}
        if "symbols" in symbol_stats:
            self.gauge("symbol_table_size").set(symbol_stats["symbols"])
        if "rows_encoded" in symbol_stats:
            self.gauge("symbol_rows_encoded").set(symbol_stats["rows_encoded"])
        if "rows_decoded" in symbol_stats:
            self.gauge("symbol_rows_decoded").set(symbol_stats["rows_decoded"])
        for result, count in getattr(profile, "cache_probes", {}).items():
            if count:
                self.counter("snapshot_cache_total", result=result).inc(count)
        degradations = getattr(profile, "pool_degradations", 0)
        if degradations:
            self.counter("pool_degradations_total").inc(degradations)
        worker_failures = getattr(profile, "worker_failures", 0)
        if worker_failures:
            self.counter("worker_failures_total").inc(worker_failures)

    # -- exporters ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A stable plain-dict snapshot, keys ``name`` or ``name{k=v,...}``."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {
            name + _label_suffix(labels): instrument.export()
            for (name, labels), instrument in instruments
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, default=str)

    def rows(self) -> List[Tuple[str, str, str, float]]:
        """One ``(name, labels, kind, value)`` tuple per exported series —
        the ``sys_metrics`` system-catalog shape.

        Counters and gauges export one row each; histograms expand into
        ``histogram_count``, ``histogram_sum`` and the derived
        ``histogram_p50``/``p95``/``p99`` quantile rows.  Labels render as
        the stable ``k=v,...`` text of :meth:`snapshot` keys.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        rows: List[Tuple[str, str, str, float]] = []
        for (name, labels), instrument in instruments:
            label_text = ",".join(f"{key}={value}" for key, value in labels)
            if isinstance(instrument, Histogram):
                rows.append((name, label_text, "histogram_count",
                             float(instrument.count)))
                rows.append((name, label_text, "histogram_sum",
                             float(instrument.sum)))
                for quantile_name, q in (("p50", 0.5), ("p95", 0.95),
                                         ("p99", 0.99)):
                    rows.append((
                        name, label_text, f"histogram_{quantile_name}",
                        float(instrument.quantile(q)),
                    ))
            else:
                rows.append((name, label_text, instrument.kind,
                             float(instrument.value)))
        return rows

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (one ``# TYPE`` line per family)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        seen_types = set()
        for (name, labels), instrument in instruments:
            family = prefix + name
            if family not in seen_types:
                seen_types.add(family)
                lines.append(f"# TYPE {family} {instrument.kind}")
            label_text = ",".join(
                f'{key}="{value}"' for key, value in labels
            )
            if isinstance(instrument, Histogram):
                cumulative_labels = (
                    label_text + "," if label_text else ""
                )
                for bound, count in zip(instrument.buckets,
                                        instrument._counts):
                    lines.append(
                        f'{family}_bucket{{{cumulative_labels}le="{bound}"}}'
                        f" {count}"
                    )
                lines.append(
                    f'{family}_bucket{{{cumulative_labels}le="+Inf"}}'
                    f" {instrument.count}"
                )
                # Derived quantiles, summary-style: pre-interpolated here so
                # scrapes need no server-side histogram_quantile() step.
                for q_label, q in (("0.5", 0.5), ("0.95", 0.95),
                                   ("0.99", 0.99)):
                    lines.append(
                        f'{family}{{{cumulative_labels}quantile="{q_label}"}}'
                        f" {instrument.quantile(q)}"
                    )
                suffix = "{" + label_text + "}" if label_text else ""
                lines.append(f"{family}_sum{suffix} {instrument.sum}")
                lines.append(f"{family}_count{suffix} {instrument.count}")
            else:
                suffix = "{" + label_text + "}" if label_text else ""
                lines.append(f"{family}{suffix} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

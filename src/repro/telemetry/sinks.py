"""Span sinks: where finished traces go.

A sink receives every assembled :class:`~repro.telemetry.spans.Trace` whose
root span finished under a tracer it is attached to.  Three implementations:

* :class:`RingBufferSink` — the default; keeps the last N traces in memory
  so ``QueryResult.trace()`` and post-hoc debugging work with no I/O.
* :class:`JsonLinesSink` — appends one JSON object per trace to a file
  (the artifact format uploaded by the smoke workflow).
* :class:`SlowQueryLog` — writes one structured line per over-threshold
  query trace to a stream (stderr by default).

Engine-core modules must not import this module (CI grep guard): sinks are
constructed by user code / the API layer and handed to the tracer through
:class:`~repro.telemetry.config.TelemetryConfig`.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from typing import Any, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.telemetry.spans import Trace


def query_summary_rows(
    traces: Iterable[Trace], root_name: str = "query"
) -> List[Tuple[Any, ...]]:
    """One ``(trace_id, fingerprint, relation, latency_us, rows, cache)``
    tuple per ``root_name``-rooted trace — the ``sys_queries``
    system-catalog shape.

    Latency is the root span's duration in integer microseconds; a missing
    ``rows`` attribute becomes ``-1`` (keeping the column integer-typed),
    and a missing cache status is ``"none"`` — the same conventions as
    :func:`format_slow_query`.
    """
    rows: List[Tuple[Any, ...]] = []
    for trace in traces:
        root = trace.root
        if root is None or root.name != root_name:
            continue
        attributes = root.attributes
        rows.append((
            trace.trace_id,
            str(attributes.get("program", "?")),
            str(attributes.get("relation", "*")),
            root.duration_ns // 1000,
            int(attributes.get("rows", -1)),
            str(attributes.get("cache", "none")),
        ))
    return rows


class SpanSink:
    """Interface: receives each finished trace, must never raise."""

    def export(self, trace: Trace) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class RingBufferSink(SpanSink):
    """Keeps the most recent ``capacity`` traces in memory."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("ring buffer needs capacity >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=capacity)

    def export(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def traces(self) -> List[Trace]:
        """Oldest-first copy of the retained traces."""
        with self._lock:
            return list(self._traces)

    def latest(self) -> Optional[Trace]:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def query_rows(self, root_name: str = "query") -> List[Tuple[Any, ...]]:
        """Retained query traces as ``sys_queries``-shaped summary rows."""
        return query_summary_rows(self.traces(), root_name=root_name)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class JsonLinesSink(SpanSink):
    """Appends one JSON document per trace to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()

    def export(self, trace: Trace) -> None:
        line = trace.to_json()
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")


def format_slow_query(trace: Trace) -> str:
    """The single structured slow-query line for ``trace``.

    Fields: trace id, program fingerprint, queried relation, latency,
    result rows, result-cache status, span count — everything needed to
    find the query again without parsing the full trace.

    Mutation-rooted traces get the mutation shape instead: the update
    strategy and the DRed phase counts (propagated, rederived,
    over-deleted) replace the query-only relation/rows/cache fields.
    """
    root = trace.root
    attributes = root.attributes if root is not None else {}
    latency_ms = trace.duration_seconds * 1000.0
    if root is not None and root.name == "mutation":
        return (
            "slow-mutation"
            f" trace={trace.trace_id}"
            f" program={attributes.get('program', '?')}"
            f" strategy={attributes.get('strategy', '?')}"
            f" inserted={attributes.get('inserted', '?')}"
            f" retracted={attributes.get('retracted', '?')}"
            f" propagated={attributes.get('propagated', '?')}"
            f" rederived={attributes.get('rederived', '?')}"
            f" over_deleted={attributes.get('over_deleted', '?')}"
            f" latency_ms={latency_ms:.3f}"
            f" spans={len(trace)}"
        )
    return (
        "slow-query"
        f" trace={trace.trace_id}"
        f" program={attributes.get('program', '?')}"
        f" relation={attributes.get('relation', '*')}"
        f" latency_ms={latency_ms:.3f}"
        f" rows={attributes.get('rows', '?')}"
        f" cache={attributes.get('cache', 'none')}"
        f" spans={len(trace)}"
    )


class SlowQueryLog(SpanSink):
    """Logs one line per query trace at or over the latency threshold.

    Only traces rooted at one of ``root_names`` are considered — internal
    traces (mutations, recomputes) have their own spans but are not
    queries.  A trace exactly at the threshold is logged.
    """

    def __init__(
        self,
        threshold_seconds: float,
        stream: Optional[TextIO] = None,
        root_names: Sequence[str] = ("query",),
    ) -> None:
        if threshold_seconds < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold_seconds = threshold_seconds
        self.stream = stream
        self.root_names = tuple(root_names)
        self._lock = threading.Lock()
        self.emitted = 0

    def export(self, trace: Trace) -> None:
        root = trace.root
        if root is None or root.name not in self.root_names:
            return
        if trace.duration_seconds < self.threshold_seconds:
            return
        line = format_slow_query(trace)
        stream = self.stream if self.stream is not None else sys.stderr
        with self._lock:
            self.emitted += 1
            print(line, file=stream)

"""Hierarchical trace spans: Tracer, Span, worker SpanBuffer, Trace.

Design constraints (see the telemetry package docstring):

* **Monotonic, cross-process-comparable clocks.**  Timestamps are
  ``time.perf_counter_ns()`` — monotonic, nanosecond-resolution, and (on
  Linux, where the fork pool exists) backed by ``CLOCK_MONOTONIC``, which is
  shared across ``fork``, so worker-recorded intervals nest correctly inside
  coordinator spans.
* **Ambient current span.**  The parent of a new span defaults to the
  calling context's current span (a ``contextvars.ContextVar``), so nested
  engine calls attach to whatever root the API layer opened without any
  explicit threading of span handles through the engine.
* **Zero-overhead when disabled.**  The engine defaults to
  :data:`NOOP_TRACER`; hot paths guard with ``if tracer.enabled`` so the
  disabled cost is one attribute load and a branch — no allocation.
* **Worker spans merge by id remapping.**  Shard workers record into a
  :class:`SpanBuffer` (plain picklable dicts, local ids); the coordinator
  drains buffers through the worker pool — the same idiom as the PR-5
  vectorized-stats drain — and :meth:`Tracer.merge_buffer` rewrites ids into
  the live trace, reparenting each buffer-root onto the coordinator span
  that drove the rounds.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_current_span", default=None
)

#: Traces whose root never finishes (an exception unwound past the engine)
#: must not accumulate forever; the oldest open trace is dropped past this.
_MAX_OPEN_TRACES = 128


def current_span() -> Optional["Span"]:
    """The ambient span of the calling context (None outside any trace)."""
    return _CURRENT_SPAN.get()


class Span:
    """One timed operation inside a trace.

    Spans are context managers (``with tracer.span("stratum", index=0):``)
    and double as plain handles: ``span = tracer.span(...)`` followed by
    ``span.finish()`` records the same interval.  While open (and created
    with ``ambient=True``), the span is the context's current span, so
    spans opened underneath attach to it automatically.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "start_ns", "end_ns",
        "attributes", "events", "status", "trace", "_tracer", "_token",
        "_ambient",
    )

    #: Real spans record; the no-op singleton overrides this with True.
    noop = False

    def __init__(
        self,
        tracer: Optional["Tracer"],
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attributes: Dict[str, Any],
        start_ns: Optional[int] = None,
        ambient: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = time.perf_counter_ns() if start_ns is None else start_ns
        self.end_ns: Optional[int] = None
        self.attributes = attributes
        self.events: List[Tuple[str, int, Dict[str, Any]]] = []
        self.status = "ok"
        #: Set on the root span once its trace is assembled.
        self.trace: Optional["Trace"] = None
        self._tracer = tracer
        self._ambient = ambient
        self._token = _CURRENT_SPAN.set(self) if ambient else None

    # -- recording --------------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        """A point-in-time annotation inside this span's interval."""
        self.events.append((name, time.perf_counter_ns(), attributes))

    def finish(self) -> None:
        """Close the span (idempotent); roots assemble and export their trace."""
        if self.end_ns is not None:
            return
        self.end_ns = time.perf_counter_ns()
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if self._tracer is not None:
            self._tracer._finished(self)

    # -- reading ----------------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe record of this span (the JSON-lines sink format)."""
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "status": self.status,
            "attributes": dict(self.attributes),
        }
        if self.events:
            record["events"] = [
                {"name": name, "at_ns": at_ns, "attributes": dict(attributes)}
                for name, at_ns, attributes in self.events
            ]
        return record

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NoopSpan:
    """The shared do-nothing span: every operation is a constant method call."""

    __slots__ = ()
    noop = True
    trace = None
    trace_id = ""
    span_id = 0
    parent_id = None
    name = ""
    status = "ok"
    duration_ns = 0
    duration_seconds = 0.0

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NoopTracer:
    """The default tracer: disabled, allocation-free, a shared singleton."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **kwargs: Any) -> _NoopSpan:
        return NOOP_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def merge_buffer(self, records, parent=None) -> List[Span]:
        return []


NOOP_SPAN = _NoopSpan()
NOOP_TRACER = _NoopTracer()


class Tracer:
    """Produces spans and assembles finished traces for the sinks.

    Thread-safe: span bookkeeping is guarded by a lock, and parenting uses
    a ``contextvars`` ambient (so spans opened on other threads simply start
    their own traces unless given an explicit ``parent``).
    """

    enabled = True

    def __init__(self, sinks: Sequence[object] = ()) -> None:
        self._sinks: List[object] = list(sinks)
        self._lock = threading.Lock()
        self._next_span = itertools.count(1)
        self._next_trace = itertools.count(1)
        # Distinguishes traces of different tracer instances in shared sinks.
        self._seed = f"{time.time_ns() & 0xFFFFFF:06x}"
        self._open: Dict[str, List[Span]] = {}

    # -- span production --------------------------------------------------------

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        root: bool = False,
        ambient: bool = True,
        **attributes: Any,
    ) -> Span:
        """Open a span.

        Parent resolution: an explicit ``parent`` wins; ``root=True`` forces
        a fresh trace; otherwise the ambient current span (if any) is the
        parent.  ``ambient=False`` skips installing the span as the current
        span — the cheap choice for leaf spans that never have children
        (e.g. per-operator spans in the vectorized executor's batch loop).
        """
        if parent is None and not root:
            ambient_parent = _CURRENT_SPAN.get()
            if ambient_parent is not None and not ambient_parent.noop:
                parent = ambient_parent
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = f"{self._seed}-{next(self._next_trace):06x}"
            parent_id = None
        with self._lock:
            span_id = next(self._next_span)
        return Span(
            self, trace_id, span_id, parent_id, name, attributes,
            ambient=ambient,
        )

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the ambient span (dropped outside any trace)."""
        span = _CURRENT_SPAN.get()
        if span is not None and not span.noop:
            span.event(name, **attributes)

    def add_sink(self, sink: object) -> None:
        self._sinks.append(sink)

    # -- worker-span merging ----------------------------------------------------

    def merge_buffer(
        self, records: Sequence[Dict[str, Any]], parent: Optional[Span] = None
    ) -> List[Span]:
        """Fold one :class:`SpanBuffer` drain into ``parent``'s live trace.

        Every record gets a fresh coordinator span id; intra-buffer parent
        links are remapped through the id translation table, and buffer
        roots are reparented onto ``parent`` (the coordinator span that
        drove the worker rounds).  Records carry ``perf_counter_ns``
        timestamps, comparable across the thread/fork pool boundary.
        """
        if parent is None or parent.noop or not records:
            return []
        id_map: Dict[int, int] = {}
        merged: List[Span] = []
        with self._lock:
            for record in records:
                id_map[record["span_id"]] = next(self._next_span)
        for record in records:
            span = Span(
                tracer=None,
                trace_id=parent.trace_id,
                span_id=id_map[record["span_id"]],
                parent_id=id_map.get(record["parent_id"], parent.span_id),
                name=record["name"],
                attributes=dict(record["attributes"]),
                start_ns=record["start_ns"],
                ambient=False,
            )
            span.end_ns = record["end_ns"]
            span.status = record.get("status", "ok")
            merged.append(span)
        with self._lock:
            self._open.setdefault(parent.trace_id, []).extend(merged)
        return merged

    # -- trace assembly ---------------------------------------------------------

    def _finished(self, span: Span) -> None:
        trace: Optional[Trace] = None
        with self._lock:
            bucket = self._open.setdefault(span.trace_id, [])
            bucket.append(span)
            if span.parent_id is None:
                del self._open[span.trace_id]
                trace = Trace(span.trace_id, bucket)
            elif len(self._open) > _MAX_OPEN_TRACES:
                self._open.pop(next(iter(self._open)))
        if trace is not None:
            span.trace = trace
            for sink in self._sinks:
                sink.export(trace)


class Trace:
    """One finished span tree, ordered by start time."""

    __slots__ = ("trace_id", "spans", "root")

    def __init__(self, trace_id: str, spans: Sequence[Span]) -> None:
        self.trace_id = trace_id
        self.spans: Tuple[Span, ...] = tuple(
            sorted(spans, key=lambda span: (span.start_ns, span.span_id))
        )
        roots = [span for span in self.spans if span.parent_id is None]
        self.root: Optional[Span] = roots[0] if roots else None

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds if self.root is not None else 0.0

    def find(self, name: str) -> List[Span]:
        """Every span named ``name``, in start order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def depth_of(self, span: Span) -> int:
        """Root distance of ``span`` (root = 0); orphans count from their top."""
        by_id = {s.span_id: s for s in self.spans}
        depth = 0
        current = span
        while current.parent_id is not None and current.parent_id in by_id:
            current = by_id[current.parent_id]
            depth += 1
        return depth

    def render(self) -> str:
        """An indented tree: name, duration, status, attributes."""
        lines: List[str] = [f"trace {self.trace_id} ({len(self.spans)} spans)"]
        children: Dict[Optional[int], List[Span]] = {}
        by_id = {span.span_id: span for span in self.spans}
        for span in self.spans:
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)

        def emit(span: Span, indent: int) -> None:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            status = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(
                "  " * indent
                + f"{span.name} ({span.duration_ns / 1e6:.2f} ms){status}"
                + (f" {attrs}" if attrs else "")
            )
            for event_name, _at_ns, event_attrs in span.events:
                event_text = " ".join(
                    f"{key}={value}" for key, value in sorted(event_attrs.items())
                )
                lines.append(
                    "  " * (indent + 1)
                    + f"@ {event_name}" + (f" {event_text}" if event_text else "")
                )
            for child in children.get(span.span_id, []):
                emit(child, indent + 1)

        for top in children.get(None, []):
            emit(top, 1)
        return "\n".join(lines)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def span_rows(self) -> List[Tuple[Any, ...]]:
        """One ``(span_id, parent_id, trace_id, name, start_ns, duration_ns)``
        tuple per span — the ``sys_spans`` system-catalog shape.  Roots get
        parent ``-1`` (span ids start at 1, so the sentinel is unambiguous
        and keeps the column integer-typed for Datalog comparisons)."""
        return [
            (
                span.span_id,
                -1 if span.parent_id is None else span.parent_id,
                span.trace_id,
                span.name,
                span.start_ns,
                span.duration_ns,
            )
            for span in self.spans
        ]

    def attr_rows(self) -> List[Tuple[Any, ...]]:
        """One ``(span_id, key, value)`` tuple per span attribute — the
        ``sys_span_attrs`` system-catalog shape.  Values are stringified so
        the column holds one comparable type."""
        rows: List[Tuple[Any, ...]] = []
        for span in self.spans:
            for key in sorted(span.attributes):
                rows.append((span.span_id, key, str(span.attributes[key])))
        return rows

    def to_json(self) -> str:
        return json.dumps(
            {"trace_id": self.trace_id, "spans": self.to_dicts()},
            sort_keys=True, default=str,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        root = self.root.name if self.root is not None else "?"
        return f"Trace({self.trace_id!r}, root={root!r}, spans={len(self.spans)})"


class _BufferedSpan:
    """A lightweight span recorded into a worker's :class:`SpanBuffer`."""

    __slots__ = ("_buffer", "record", "_stacked")

    noop = False

    def __init__(self, buffer: "SpanBuffer", record: Dict[str, Any],
                 stacked: bool) -> None:
        self._buffer = buffer
        self.record = record
        self._stacked = stacked

    def set(self, **attributes: Any) -> "_BufferedSpan":
        self.record["attributes"].update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        pass  # worker spans carry attributes only

    def finish(self) -> None:
        if self.record["end_ns"] is not None:
            return
        self.record["end_ns"] = time.perf_counter_ns()
        if self._stacked:
            self._buffer._pop(self.record["span_id"])

    def __enter__(self) -> "_BufferedSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.record["status"] = f"error:{exc_type.__name__}"
        self.finish()
        return False


class SpanBuffer:
    """A Tracer-shaped recorder for shard workers.

    Spans are recorded as plain dicts (picklable — fork-pool children drain
    over pipes), ids are worker-local, and parenting uses an explicit stack
    rather than contextvars: a worker runs one task at a time, and records
    must survive pickling.  The coordinator remaps everything via
    :meth:`Tracer.merge_buffer`.
    """

    enabled = True

    def __init__(self) -> None:
        self._next = itertools.count(1)
        self._stack: List[int] = []
        self.records: List[Dict[str, Any]] = []

    def span(
        self,
        name: str,
        parent: Optional[object] = None,
        root: bool = False,
        ambient: bool = True,
        **attributes: Any,
    ) -> _BufferedSpan:
        span_id = next(self._next)
        record: Dict[str, Any] = {
            "span_id": span_id,
            "parent_id": self._stack[-1] if self._stack else None,
            "name": name,
            "start_ns": time.perf_counter_ns(),
            "end_ns": None,
            "status": "ok",
            "attributes": dict(attributes),
        }
        self.records.append(record)
        if ambient:
            self._stack.append(span_id)
        return _BufferedSpan(self, record, stacked=ambient)

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def _pop(self, span_id: int) -> None:
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        elif span_id in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span_id)

    def drain(self) -> List[Dict[str, Any]]:
        """Finished records, reset after reading (unfinished spans close now)."""
        drained = []
        for record in self.records:
            if record["end_ns"] is None:  # pragma: no cover - defensive
                record["end_ns"] = record["start_ns"]
            drained.append(record)
        self.records = []
        self._stack = []
        return drained

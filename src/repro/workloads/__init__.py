"""Workload data generators.

The paper evaluates Carac on facts extracted from real artifacts (the Apache
``httpd`` source analysed by Graspan, and a small Scala linked-list library
analysed through TASTy Query).  Neither extraction pipeline is available
offline, so this package synthesises fact bases with the same schemas and the
same structural properties that matter to the optimization — skewed degree
distributions, growing derived relations, shrinking deltas — at configurable
scales.  DESIGN.md documents the substitution.
"""

from repro.workloads.graphs import (
    chain_edges,
    dag_edges,
    random_edges,
    scale_free_edges,
    tree_edges,
)
from repro.workloads.program_facts import (
    CSDADataset,
    CSPADataset,
    HttpdLikeGenerator,
    SListLibGenerator,
    SListLibDataset,
)
from repro.workloads.datasets import DatasetSpec, get_dataset, list_datasets
from repro.workloads.streaming import (
    UpdateBatch,
    UpdateStream,
    edge_update_stream,
    fact_update_stream,
)

__all__ = [
    "CSDADataset",
    "CSPADataset",
    "DatasetSpec",
    "UpdateBatch",
    "UpdateStream",
    "edge_update_stream",
    "fact_update_stream",
    "HttpdLikeGenerator",
    "SListLibDataset",
    "SListLibGenerator",
    "chain_edges",
    "dag_edges",
    "get_dataset",
    "list_datasets",
    "random_edges",
    "scale_free_edges",
    "tree_edges",
]

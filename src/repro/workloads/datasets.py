"""The dataset registry: named, seeded, scaled dataset specifications.

Benchmarks refer to datasets by name ("cspa_20k", "slistlib", ...) so that
every figure/table driver uses exactly the same inputs.  Scales default to
laptop-friendly sizes; the paper-scale variants are registered too but only
used when explicitly requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.workloads.program_facts import (
    CSDADataset,
    CSPADataset,
    HttpdLikeGenerator,
    SListLibDataset,
    SListLibGenerator,
)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: its builder and a human-readable description."""

    name: str
    description: str
    builder: Callable[[], object]

    def build(self) -> object:
        return self.builder()


def _registry() -> Dict[str, DatasetSpec]:
    httpd = HttpdLikeGenerator(seed=2024)
    slist = SListLibGenerator(seed=7)
    specs = [
        DatasetSpec(
            "cspa_tiny",
            "CSPA facts, ~120 tuples (unit tests / unoptimized-unindexed runs)",
            lambda: httpd.cspa(tuples=120),
        ),
        DatasetSpec(
            "cspa_small",
            "CSPA facts, ~150 tuples (default macro-benchmark scale)",
            lambda: httpd.cspa(tuples=150),
        ),
        DatasetSpec(
            "cspa_20k",
            "CSPA facts, ~20000 tuples (the paper's CSPA_20k sample, full scale)",
            lambda: httpd.cspa(tuples=20_000),
        ),
        DatasetSpec(
            "csda_small",
            "CSDA dataflow DAG, ~2000 tuples",
            lambda: httpd.csda(tuples=2_000),
        ),
        DatasetSpec(
            "csda_medium",
            "CSDA dataflow DAG, ~8000 tuples",
            lambda: httpd.csda(tuples=8_000),
        ),
        DatasetSpec(
            "slistlib",
            "SListLib program facts (Andersen + inverse-function analyses)",
            lambda: slist.generate(list_length=20, extra_pipelines=4),
        ),
        DatasetSpec(
            "slistlib_large",
            "SListLib program facts, scaled up pipelines",
            lambda: slist.generate(list_length=40, extra_pipelines=12),
        ),
    ]
    return {spec.name: spec for spec in specs}


_DATASETS = _registry()


def list_datasets() -> List[str]:
    return sorted(_DATASETS)


def get_dataset(name: str) -> object:
    """Build the named dataset (a fresh object every call)."""
    try:
        spec = _DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}") from None
    return spec.build()


def get_spec(name: str) -> DatasetSpec:
    try:
        return _DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}") from None

"""Seeded random graph generators used to build synthetic fact bases.

All generators are deterministic given their ``seed`` so that every test and
benchmark run sees the same data.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

Edge = Tuple[int, int]


def chain_edges(length: int, start: int = 0) -> List[Edge]:
    """A simple path 0 -> 1 -> ... -> length."""
    return [(start + i, start + i + 1) for i in range(length)]


def tree_edges(depth: int, fanout: int = 2, start: int = 0) -> List[Edge]:
    """A complete tree with ``fanout`` children per node, edges parent -> child."""
    edges: List[Edge] = []
    frontier = [start]
    next_id = start + 1
    for _ in range(depth):
        new_frontier: List[int] = []
        for node in frontier:
            for _ in range(fanout):
                edges.append((node, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return edges


def random_edges(nodes: int, edges: int, seed: int = 0,
                 allow_self_loops: bool = False) -> List[Edge]:
    """``edges`` distinct uniformly random directed edges over ``nodes`` vertices."""
    rng = random.Random(seed)
    result: Set[Edge] = set()
    limit = nodes * nodes if allow_self_loops else nodes * (nodes - 1)
    target = min(edges, limit)
    while len(result) < target:
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if not allow_self_loops and a == b:
            continue
        result.add((a, b))
    return sorted(result)


def dag_edges(nodes: int, edges: int, seed: int = 0) -> List[Edge]:
    """Random edges that always go from a lower to a higher vertex id (acyclic)."""
    rng = random.Random(seed)
    result: Set[Edge] = set()
    limit = nodes * (nodes - 1) // 2
    target = min(edges, limit)
    while len(result) < target:
        a = rng.randrange(nodes - 1)
        b = rng.randrange(a + 1, nodes)
        result.add((a, b))
    return sorted(result)


def scale_free_edges(nodes: int, edges: int, seed: int = 0,
                     hub_fraction: float = 0.05) -> List[Edge]:
    """Edges with a skewed (hub-heavy) target distribution.

    A small fraction of vertices act as hubs that attract a large share of
    edge endpoints, which is the degree skew that makes bad join orders blow
    up on program-analysis fact graphs: joining two hub-adjacent relations
    without a selective condition produces enormous intermediates.
    """
    rng = random.Random(seed)
    hub_count = max(1, int(nodes * hub_fraction))
    hubs = list(range(hub_count))
    result: Set[Edge] = set()
    attempts = 0
    while len(result) < edges and attempts < edges * 20:
        attempts += 1
        source = rng.randrange(nodes)
        if rng.random() < 0.6:
            target = rng.choice(hubs)
        else:
            target = rng.randrange(nodes)
        if source != target:
            result.add((source, target))
    return sorted(result)

"""Synthetic program-analysis fact bases.

Three generators stand in for the paper's proprietary inputs:

* :class:`HttpdLikeGenerator` — Assign/Dereference fact graphs with the
  Graspan CSPA schema and the skewed structure of pointer-heavy C code
  (a small set of heavily-assigned "hub" variables), plus dataflow edges with
  null sources for CSDA.
* :class:`SListLibGenerator` — the fact base a TASTy extractor would emit for
  the paper's ~200-line Scala linked-list library ("SListLib"): variables,
  assignments, loads/stores, address-of facts for heap allocations, and call
  facts for the serialize/deserialize round trip the inverse-function
  analysis is designed to spot.

Every generator is deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.workloads.graphs import dag_edges, scale_free_edges

Row = Tuple


@dataclass
class CSPADataset:
    """EDB facts for the Graspan context-sensitive pointer analysis."""

    assign: List[Tuple[int, int]] = field(default_factory=list)
    dereference: List[Tuple[int, int]] = field(default_factory=list)

    def fact_count(self) -> int:
        return len(self.assign) + len(self.dereference)

    def as_dict(self) -> Dict[str, List[Row]]:
        return {"Assign": list(self.assign), "Derefr": list(self.dereference)}


@dataclass
class CSDADataset:
    """EDB facts for the Graspan context-sensitive dataflow analysis."""

    edge: List[Tuple[int, int]] = field(default_factory=list)
    null_source: List[Tuple[int]] = field(default_factory=list)

    def fact_count(self) -> int:
        return len(self.edge) + len(self.null_source)

    def as_dict(self) -> Dict[str, List[Row]]:
        return {"edge": list(self.edge), "nullSource": list(self.null_source)}


class HttpdLikeGenerator:
    """Synthesises CSPA / CSDA fact graphs shaped like the httpd extraction.

    The important structural property for join-order experiments is the skew:
    a small population of variables (global structures, frequently-passed
    pointers) participates in a large share of assignments, so the
    ``VaFlow ⋈ VaFlow`` Cartesian-style orders explode while orders that keep
    a selective join key stay small — the iteration-1 versus iteration-7
    contrast of §IV.
    """

    def __init__(self, seed: int = 2024) -> None:
        self.seed = seed

    def cspa(self, tuples: int = 2_000, variables: int = 0) -> CSPADataset:
        """Approximately ``tuples`` EDB facts split between Assign and Derefr."""
        if tuples < 10:
            raise ValueError("a CSPA dataset needs at least 10 tuples")
        variable_count = variables or max(40, tuples)
        assign_count = int(tuples * 0.7)
        dereference_count = tuples - assign_count
        assign = scale_free_edges(variable_count, assign_count, seed=self.seed)
        rng = random.Random(self.seed + 1)
        dereference = []
        seen = set()
        while len(dereference) < dereference_count:
            pointer = rng.randrange(variable_count)
            target = rng.randrange(variable_count)
            if pointer != target and (pointer, target) not in seen:
                seen.add((pointer, target))
                dereference.append((pointer, target))
        return CSPADataset(assign=assign, dereference=dereference)

    def csda(self, tuples: int = 4_000, nodes: int = 0,
             null_fraction: float = 0.02) -> CSDADataset:
        """A dataflow DAG with a small set of null-producing sources."""
        node_count = nodes or max(100, tuples // 3)
        edge_count = max(1, tuples - int(node_count * null_fraction))
        edges = dag_edges(node_count, edge_count, seed=self.seed)
        rng = random.Random(self.seed + 2)
        null_count = max(1, int(node_count * null_fraction))
        null_sources = sorted(rng.sample(range(node_count), null_count))
        return CSDADataset(edge=edges, null_source=[(v,) for v in null_sources])


@dataclass
class SListLibDataset:
    """EDB facts for Andersen's analysis and the inverse-function analysis."""

    address_of: List[Tuple[str, str]] = field(default_factory=list)
    assign: List[Tuple[str, str]] = field(default_factory=list)
    load: List[Tuple[str, str]] = field(default_factory=list)
    store: List[Tuple[str, str]] = field(default_factory=list)
    call: List[Tuple[str, str, str, str]] = field(default_factory=list)
    follows: List[Tuple[str, str]] = field(default_factory=list)
    used_at: List[Tuple[str, str]] = field(default_factory=list)
    inverse_functions: List[Tuple[str, str]] = field(default_factory=list)

    def fact_count(self) -> int:
        return (
            len(self.address_of) + len(self.assign) + len(self.load)
            + len(self.store) + len(self.call) + len(self.follows)
            + len(self.used_at) + len(self.inverse_functions)
        )

    def andersen_facts(self) -> Dict[str, List[Row]]:
        return {
            "addressOf": list(self.address_of),
            "assign": list(self.assign),
            "load": list(self.load),
            "store": list(self.store),
        }

    def inverse_function_facts(self) -> Dict[str, List[Row]]:
        facts = self.andersen_facts()
        facts.update(
            {
                "call": list(self.call),
                "follows": list(self.follows),
                "usedAt": list(self.used_at),
                "invFuns": list(self.inverse_functions),
            }
        )
        return facts


class SListLibGenerator:
    """Models the facts of the paper's SListLib micro-program.

    The generated "program" builds a linked list of ``list_length`` nodes,
    operates on it, serializes it, does unrelated work, then deserializes it
    and reads the result — i.e. the wasted round trip the analysis must find.
    ``extra_pipelines`` appends additional, independent pipelines so the fact
    base (and the analysis runtime) can be scaled up without changing its
    character.
    """

    def __init__(self, seed: int = 7) -> None:
        self.seed = seed

    def generate(self, list_length: int = 20, extra_pipelines: int = 4) -> SListLibDataset:
        rng = random.Random(self.seed)
        dataset = SListLibDataset()
        dataset.inverse_functions.append(("deserialize", "serialize"))
        dataset.inverse_functions.append(("from_json", "to_json"))

        instruction_counter = 0

        def next_instruction() -> str:
            nonlocal instruction_counter
            instruction_counter += 1
            return f"i{instruction_counter}"

        def emit_pipeline(pipeline: int) -> None:
            prefix = f"p{pipeline}"
            head = f"{prefix}_head"
            dataset.address_of.append((head, f"{prefix}_node0"))
            previous = head
            for index in range(list_length):
                node = f"{prefix}_node{index}"
                value = f"{prefix}_val{index}"
                dataset.address_of.append((value, f"{prefix}_obj{index}"))
                dataset.store.append((node, value))
                if index:
                    dataset.assign.append((node, previous))
                    dataset.load.append((f"{prefix}_read{index}", previous))
                previous = node

            # serialize(list) -> blob ; ... ; deserialize(blob2) -> list2
            serialize_site = next_instruction()
            blob = f"{prefix}_blob"
            dataset.call.append((serialize_site, "serialize", head, blob))
            middle = next_instruction()
            blob2 = f"{prefix}_blob2"
            dataset.assign.append((blob2, blob))
            dataset.follows.append((serialize_site, middle))
            deserialize_site = next_instruction()
            restored = f"{prefix}_restored"
            dataset.call.append((deserialize_site, "deserialize", blob2, restored))
            dataset.follows.append((middle, deserialize_site))
            use_site = next_instruction()
            dataset.used_at.append((restored, use_site))
            dataset.follows.append((deserialize_site, use_site))

            # A few unrelated helper calls and flows to add realistic noise.
            for noise in range(max(2, list_length // 4)):
                site = next_instruction()
                source = f"{prefix}_val{rng.randrange(list_length)}"
                result = f"{prefix}_tmp{noise}"
                dataset.call.append((site, f"helper{noise % 3}", source, result))
                dataset.assign.append((result, source))
                dataset.used_at.append((result, site))

        for pipeline in range(1 + extra_pipelines):
            emit_pipeline(pipeline)

        # Chain instruction order across pipelines so `follows` is connected.
        for i in range(1, instruction_counter):
            dataset.follows.append((f"i{i}", f"i{i + 1}"))
        dataset.follows = sorted(set(dataset.follows))
        return dataset

"""Streaming-update workloads: deterministic batched mutation sequences.

The incremental subsystem is exercised by *update streams*: an initial fact
base followed by batches of insertions and retractions.  This module
generates such streams deterministically (same ``seed`` → same stream), in
the shape :meth:`repro.incremental.IncrementalSession.apply` consumes, so
tests, benchmarks and examples can all replay identical traffic.

Retractions are always drawn from facts known to be live (initial facts plus
earlier insertions, minus earlier retractions), mirroring real feeds where
deletes reference previously ingested rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.workloads.graphs import Edge, random_edges

Row = Tuple[object, ...]


@dataclass
class UpdateBatch:
    """One mutation batch: per-relation inserted and retracted rows."""

    inserts: Dict[str, List[Row]] = field(default_factory=dict)
    retracts: Dict[str, List[Row]] = field(default_factory=dict)

    def insert_count(self) -> int:
        return sum(len(rows) for rows in self.inserts.values())

    def retract_count(self) -> int:
        return sum(len(rows) for rows in self.retracts.values())

    def is_empty(self) -> bool:
        return not self.insert_count() and not self.retract_count()


@dataclass
class UpdateStream:
    """An initial fact base plus an ordered sequence of update batches."""

    initial: Dict[str, List[Row]]
    batches: List[UpdateBatch]

    def __iter__(self) -> Iterator[UpdateBatch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    def live_after(self) -> Dict[str, Set[Row]]:
        """The per-relation live sets once every batch has been applied.

        Matches session semantics (retracts before inserts within a batch),
        so chained streams can start where a previous stream ended.
        """
        live: Dict[str, Set[Row]] = {
            name: set(rows) for name, rows in self.initial.items()
        }
        for batch in self.batches:
            for name, rows in batch.retracts.items():
                live.setdefault(name, set()).difference_update(rows)
            for name, rows in batch.inserts.items():
                live.setdefault(name, set()).update(rows)
        return live


def edge_update_stream(
    nodes: int,
    initial_edges: int = 0,
    batches: int = 1,
    batch_size: int = 1,
    retract_fraction: float = 0.3,
    relation: str = "edge",
    seed: int = 0,
    start_edges: Optional[Sequence[Edge]] = None,
) -> UpdateStream:
    """A deterministic stream of edge insertions/retractions over one graph.

    Each batch holds ``batch_size`` mutations; a mutation is a retraction of a
    live edge with probability ``retract_fraction`` (when any are eligible),
    otherwise an insertion of an edge not currently live.  Node ids stay in
    ``range(nodes)`` so the stream keeps churning one bounded graph rather
    than growing an ever-larger vertex set.

    ``start_edges`` overrides the generated initial graph — pass a previous
    stream's :meth:`UpdateStream.live_after` to chain phases (e.g. an
    insert-only warm-up followed by retract-only churn) over one session.
    """
    if not 0.0 <= retract_fraction <= 1.0:
        raise ValueError("retract_fraction must be within [0, 1]")
    rng = random.Random(seed)
    if start_edges is not None:
        live: Set[Edge] = {tuple(edge) for edge in start_edges}
    else:
        live = set(random_edges(nodes, initial_edges, seed=seed))
    initial = {relation: [tuple(edge) for edge in sorted(live)]}

    out_batches: List[UpdateBatch] = []
    for _ in range(batches):
        batch = UpdateBatch()
        # Retraction victims come from the batch-*start* live set: the
        # session applies a batch's retractions before its insertions, so a
        # row inserted and retracted within one batch would end up live in
        # the session while the stream's bookkeeping marked it dead.
        retractable = set(live)
        for _ in range(batch_size):
            eligible = live & retractable
            if eligible and rng.random() < retract_fraction:
                victim = rng.choice(sorted(eligible))
                live.discard(victim)
                batch.retracts.setdefault(relation, []).append(tuple(victim))
            else:
                for _ in range(10 * nodes):
                    candidate = (rng.randrange(nodes), rng.randrange(nodes))
                    if candidate[0] != candidate[1] and candidate not in live:
                        live.add(candidate)
                        batch.inserts.setdefault(relation, []).append(candidate)
                        break
        if not batch.is_empty():
            out_batches.append(batch)
    return UpdateStream(initial=initial, batches=out_batches)


def fact_update_stream(
    base_facts: Dict[str, Sequence[Sequence[object]]],
    batches: int,
    batch_size: int,
    retract_fraction: float = 0.3,
    seed: int = 0,
) -> UpdateStream:
    """A churn stream over an arbitrary multi-relation fact base.

    Insertions replay previously retracted rows (or rows sampled from the
    initial base that happen to be retracted at the time); retractions pick
    live rows uniformly across relations.  This keeps every generated row
    schema-valid without knowing anything about the relations' domains —
    exactly what the Andersen/CSPA fact bases need.
    """
    rng = random.Random(seed)
    live: Dict[str, Set[Row]] = {
        name: {tuple(row) for row in rows} for name, rows in base_facts.items()
    }
    dead: Dict[str, Set[Row]] = {name: set() for name in base_facts}
    relations = sorted(name for name, rows in live.items() if rows)
    initial = {name: sorted(rows, key=repr) for name, rows in live.items()}

    out_batches: List[UpdateBatch] = []
    for _ in range(batches):
        batch = UpdateBatch()
        # Only rows live at batch start may be retracted in that batch; see
        # edge_update_stream for why (the session retracts before inserting).
        retractable = {name: set(rows) for name, rows in live.items()}
        for _ in range(batch_size):
            name = relations[rng.randrange(len(relations))]
            eligible = live[name] & retractable[name]
            can_insert = bool(dead[name])
            if eligible and (not can_insert or rng.random() < retract_fraction):
                victim = rng.choice(sorted(eligible, key=repr))
                live[name].discard(victim)
                dead[name].add(victim)
                batch.retracts.setdefault(name, []).append(victim)
            elif can_insert:
                row = rng.choice(sorted(dead[name], key=repr))
                dead[name].discard(row)
                live[name].add(row)
                batch.inserts.setdefault(name, []).append(row)
        if not batch.is_empty():
            out_batches.append(batch)
    return UpdateStream(initial=initial, batches=out_batches)

"""Tests for the macro analyses and micro programs (correctness + orderings)."""

import pytest

from repro.analyses import (
    Ordering,
    build_ackermann_program,
    build_andersen_program,
    build_cspa_program,
    build_csda_program,
    build_fibonacci_program,
    build_inverse_functions_program,
    build_primes_program,
    build_same_generation_program,
    build_transitive_closure_program,
)
from repro.analyses.registry import get_benchmark, list_benchmarks
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.workloads.program_facts import (
    CSDADataset,
    CSPADataset,
    HttpdLikeGenerator,
    SListLibGenerator,
)


def solve(program, relation, config=None):
    return ExecutionEngine(program, config or EngineConfig.interpreted()).evaluate()[relation]


class TestMicroPrograms:
    def test_fibonacci_values(self):
        result = solve(build_fibonacci_program(limit=10), "fib")
        values = dict(result)
        assert values[10] == 55
        assert values[7] == 13
        assert len(values) == 11

    def test_fibonacci_orderings_agree(self):
        reference = solve(build_fibonacci_program(limit=12, ordering=Ordering.OPTIMIZED), "fib")
        worst = solve(build_fibonacci_program(limit=12, ordering=Ordering.WORST), "fib")
        assert reference == worst

    def test_primes_values(self):
        result = solve(build_primes_program(limit=30), "prime")
        assert {v for (v,) in result} == {2, 3, 5, 7, 11, 13, 17, 19, 23, 29}

    def test_primes_orderings_agree(self):
        reference = solve(build_primes_program(limit=40, ordering=Ordering.OPTIMIZED), "prime")
        worst = solve(build_primes_program(limit=40, ordering=Ordering.WORST), "prime")
        assert reference == worst

    def test_ackermann_known_values(self):
        result = solve(build_ackermann_program(max_m=2, max_n=5), "ack")
        table = {(m, n): v for (m, n, v) in result}
        assert table[(0, 3)] == 4          # A(0, n) = n + 1
        assert table[(1, 3)] == 5          # A(1, n) = n + 2
        assert table[(2, 3)] == 9          # A(2, n) = 2n + 3
        assert table[(2, 5)] == 13

    def test_ackermann_orderings_agree(self):
        optimized = solve(build_ackermann_program(max_m=2, max_n=6, ordering=Ordering.OPTIMIZED), "ack")
        worst = solve(build_ackermann_program(max_m=2, max_n=6, ordering=Ordering.WORST), "ack")
        assert {(m, n, v) for m, n, v in optimized if n <= 6} == \
            {(m, n, v) for m, n, v in worst if n <= 6}

    def test_ackermann_domain_guard(self):
        with pytest.raises(ValueError):
            build_ackermann_program(max_m=4)

    def test_transitive_closure(self):
        program = build_transitive_closure_program([(1, 2), (2, 3)])
        assert solve(program, "path") == {(1, 2), (2, 3), (1, 3)}

    def test_same_generation(self):
        parent = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "e")]
        result = solve(build_same_generation_program(parent), "sg")
        assert ("b", "c") in result
        assert ("d", "e") in result
        assert ("b", "e") not in result


class TestMacroAnalyses:
    def cspa_dataset(self):
        return HttpdLikeGenerator(seed=5).cspa(tuples=60)

    def test_cspa_orderings_agree(self):
        dataset = self.cspa_dataset()
        results = {}
        for ordering in Ordering:
            program = build_cspa_program(dataset, ordering)
            results[ordering] = solve(program, "VAlias")
        assert results[Ordering.WRITTEN] == results[Ordering.OPTIMIZED] == results[Ordering.WORST]
        assert results[Ordering.WRITTEN]

    def test_cspa_contains_reflexive_aliases(self):
        dataset = CSPADataset(assign=[(1, 2)], dereference=[])
        result = solve(build_cspa_program(dataset), "VaFlow")
        assert (1, 1) in result and (2, 2) in result and (1, 2) in result

    def test_csda_null_propagation(self):
        dataset = CSDADataset(edge=[(1, 2), (2, 3), (4, 5)], null_source=[(1,)])
        results = ExecutionEngine(build_csda_program(dataset), EngineConfig.interpreted()).evaluate()
        assert results["nullFlow"] == {(1,), (2,), (3,)}

    def test_csda_orderings_agree(self):
        dataset = HttpdLikeGenerator(seed=6).csda(tuples=300)
        reference = solve(build_csda_program(dataset, Ordering.OPTIMIZED), "nullFlow")
        worst = solve(build_csda_program(dataset, Ordering.WORST), "nullFlow")
        assert reference == worst

    def test_andersen_points_to_basics(self):
        dataset = SListLibGenerator(seed=3).generate(list_length=5, extra_pipelines=0)
        results = ExecutionEngine(
            build_andersen_program(dataset), EngineConfig.interpreted()
        ).evaluate()
        points_to = results["pointsTo"]
        # Every addressOf fact is a points-to fact directly.
        for variable, obj in dataset.address_of:
            assert (variable, obj) in points_to

    def test_andersen_orderings_agree(self):
        dataset = SListLibGenerator(seed=3).generate(list_length=6, extra_pipelines=1)
        reference = solve(build_andersen_program(dataset, Ordering.OPTIMIZED), "pointsTo")
        worst = solve(build_andersen_program(dataset, Ordering.WORST), "pointsTo")
        assert reference == worst

    def test_inverse_functions_finds_planted_round_trip(self):
        dataset = SListLibGenerator(seed=7).generate(list_length=8, extra_pipelines=1)
        results = ExecutionEngine(
            build_inverse_functions_program(dataset), EngineConfig.interpreted()
        ).evaluate()
        assert results["wastedWork"], "the planted serialize/deserialize round trip must be found"
        assert results["roundTrip"]

    def test_inverse_functions_orderings_agree(self):
        dataset = SListLibGenerator(seed=7).generate(list_length=6, extra_pipelines=0)
        reference = solve(
            build_inverse_functions_program(dataset, Ordering.OPTIMIZED), "wastedWork"
        )
        worst = solve(build_inverse_functions_program(dataset, Ordering.WORST), "wastedWork")
        assert reference == worst

    def test_inverse_functions_has_nine_atom_rule(self):
        dataset = SListLibGenerator().generate(list_length=4, extra_pipelines=0)
        program = build_inverse_functions_program(dataset)
        wasted = [rule for rule in program.rules if rule.head_relation == "wastedWork"][0]
        assert len(wasted.positive_atoms()) == 9


class TestRegistry:
    def test_list_by_kind(self):
        assert "cspa_20k" in list_benchmarks("macro")
        assert "fibonacci" in list_benchmarks("micro")
        assert set(list_benchmarks("micro")) <= set(list_benchmarks())

    def test_get_benchmark_builds_program(self):
        spec = get_benchmark("fibonacci")
        program = spec.build(Ordering.OPTIMIZED)
        assert program.rules
        assert spec.query_relation == "fib"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_every_registered_benchmark_builds(self):
        for name in list_benchmarks():
            if name == "cspa_full":
                continue  # paper-scale dataset; building it is slow
            spec = get_benchmark(name)
            program = spec.build()
            assert program.rules, name
            assert spec.query_relation in program.relations, name

"""Unit tests for the public Database / Connection / QueryResult surface."""

import pytest

from repro import (
    Database,
    EngineConfig,
    Program,
    QueryResult,
    ResultSchema,
    ResultSet,
)
from repro.api.result import default_columns, ordered_rows
from repro.incremental.cache import ResultCache

TC_SOURCE = """
edge(1, 2). edge(2, 3). edge(3, 4).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

TC_PATHS = {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}


def build_reachability(columns=None) -> Program:
    program = Program("reach")
    edge = program.relation("edge", 2, columns=columns)
    path = program.relation("path", 2, columns=columns)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts([(1, 2), (2, 3), (3, 4)])
    return program


class TestQueryResult:
    def make(self, rows, relation="path", columns=None):
        schema = ResultSchema.of(relation, 2, columns)
        return QueryResult(schema, frozenset(rows))

    def test_set_protocol(self):
        result = self.make({(1, 2), (2, 3)})
        assert len(result) == 2
        assert (1, 2) in result
        assert (9, 9) not in result
        assert "not-a-row" not in result
        assert result == {(1, 2), (2, 3)}
        assert {(1, 2), (2, 3)} == result
        assert result == frozenset({(1, 2), (2, 3)})
        assert result != {(1, 2)}
        assert bool(result)
        assert not bool(self.make(set()))

    def test_set_operators_yield_plain_sets(self):
        result = self.make({(1, 2), (2, 3)})
        assert result - {(1, 2)} == {(2, 3)}
        assert result | {(9, 9)} == {(1, 2), (2, 3), (9, 9)}
        assert result & {(1, 2)} == {(1, 2)}
        assert isinstance(result - {(1, 2)}, set)

    def test_results_are_hashable_snapshots(self):
        a = self.make({(1, 2)})
        b = self.make({(1, 2)})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_deterministic_ordering(self):
        rows = {(3, 1), (1, 2), (2, 0), (1, 1)}
        result = self.make(rows)
        assert list(result) == sorted(rows)
        assert result.to_list() == sorted(rows)

    def test_mixed_type_rows_still_order_deterministically(self):
        rows = {(1, 2), ("a", "b"), (None, 0)}
        result = self.make(rows)
        assert list(result) == sorted(rows, key=repr)

    def test_pagination(self):
        result = self.make({(i, i + 1) for i in range(10)})
        assert result.take(3) == [(0, 1), (1, 2), (2, 3)]
        assert list(result.rows(offset=8)) == [(8, 9), (9, 10)]
        assert list(result.rows(offset=2, limit=2)) == [(2, 3), (3, 4)]
        assert list(result.rows(offset=99)) == []
        assert result.first() == (0, 1)
        assert self.make(set()).first() is None
        with pytest.raises(ValueError):
            result.rows(offset=-1)
        with pytest.raises(ValueError):
            list(result.rows(limit=-1))

    def test_count_and_lazy_thunk(self):
        calls = []

        def fetch():
            calls.append(1)
            return {(1, 2), (2, 3)}

        schema = ResultSchema.of("path", 2)
        result = QueryResult(schema, fetch)
        assert not calls  # construction does not materialise
        assert result.count() == 2
        assert result.count() == 2
        assert calls == [1]  # fetched exactly once

    def test_columnar_and_dict_exports(self):
        result = self.make({(1, 2), (3, 4)}, columns=("src", "dst"))
        assert result.to_columns() == {"src": [1, 3], "dst": [2, 4]}
        assert result.to_dicts() == [
            {"src": 1, "dst": 2},
            {"src": 3, "dst": 4},
        ]

    def test_default_column_names(self):
        result = self.make({(1, 2)})
        assert result.columns == ("c0", "c1")
        assert default_columns(3) == ("c0", "c1", "c2")

    def test_schema_validates_column_count(self):
        with pytest.raises(ValueError):
            ResultSchema.of("edge", 2, columns=("only_one",))

    def test_explain_without_profile(self):
        assert "no execution profile" in self.make({(1, 2)}).explain()

    def test_ordered_rows_helper(self):
        assert ordered_rows([(2, 1), (1, 2)]) == ((1, 2), (2, 1))


class TestQueryResultEdgeCases:
    def make(self, rows, relation="path", arity=2, columns=None):
        return QueryResult(ResultSchema.of(relation, arity, columns), frozenset(rows))

    def test_pagination_past_the_end(self):
        result = self.make({(1, 2), (2, 3)})
        assert list(result.rows(offset=2)) == []
        assert list(result.rows(offset=99)) == []
        assert list(result.rows(offset=99, limit=5)) == []
        assert list(result.rows(offset=1, limit=99)) == [(2, 3)]
        assert list(result.rows(offset=0, limit=0)) == []

    def test_take_zero_and_beyond(self):
        result = self.make({(1, 2), (2, 3)})
        assert result.take(0) == []
        assert result.take(99) == [(1, 2), (2, 3)]
        assert self.make(set()).take(0) == []

    def test_count_on_empty_relation(self):
        """An IDB relation that derives nothing still yields a usable result."""
        program = Program("empty_idb")
        edge = program.relation("edge", 2)
        unreached = program.relation("unreached", 2)
        x, y = program.variables("x", "y")
        unreached(x, y) <= edge(x, y) & edge(y, x)
        edge.add_facts([(1, 2)])  # no cycle: nothing derives
        result = Database(program).query("unreached")
        assert result.count() == 0
        assert not result
        assert result.take(5) == []
        assert list(result.rows(offset=3)) == []
        assert result.first() is None
        assert result.to_columns() == {"c0": [], "c1": []}
        assert result.to_dicts() == []

    def test_zero_arity_relation_exports(self):
        """Arity-0 relations: one possible row ``()``; no columns at all."""
        populated = self.make({()}, relation="flag", arity=0)
        assert populated.count() == 1
        assert populated.to_columns() == {}
        assert populated.to_dicts() == [{}]
        assert populated.to_list() == [()]
        assert populated.take(0) == []
        empty = self.make(set(), relation="flag", arity=0)
        assert empty.count() == 0
        assert empty.to_columns() == {}
        assert empty.to_dicts() == []


class TestResultSet:
    def test_mapping_protocol_and_dict_equality(self):
        db = Database(TC_SOURCE)
        results = db.query()
        assert set(results) == {"path"}
        assert "path" in results
        assert len(results) == 1
        assert results.relations() == ("path",)
        assert results["path"] == TC_PATHS
        assert results == {"path": TC_PATHS}
        assert results.to_sets() == {"path": TC_PATHS}
        assert results.total_rows() == len(TC_PATHS)

    def test_unknown_relation_lists_available(self):
        results = Database(TC_SOURCE).query()
        with pytest.raises(KeyError, match="path"):
            results["nope"]

    @pytest.mark.parametrize("config", [
        EngineConfig.interpreted(),
        EngineConfig.naive(),
        EngineConfig.jit("lambda"),
        EngineConfig.jit("bytecode"),
        EngineConfig.aot(),
        EngineConfig.parallel(shards=2),
        EngineConfig.parallel(shards=4, base=EngineConfig.jit("lambda")),
    ], ids=lambda c: c.describe())
    def test_query_all_returns_same_idb_relations_in_every_mode(self, config):
        """solve()-with-no-relation consistency, now via the Database path."""
        results = Database(TC_SOURCE, config).query()
        assert results.relations() == ("path",)
        assert results == {"path": TC_PATHS}


class TestDatabase:
    def test_accepts_dsl_program_datalog_program_and_source(self):
        dsl = build_reachability()
        assert Database(dsl).query("path") == TC_PATHS
        assert Database(dsl.datalog).query("path") == TC_PATHS
        assert Database(TC_SOURCE).query("path") == TC_PATHS
        assert Database.from_source(TC_SOURCE, name="tc").program.name == "tc"
        with pytest.raises(TypeError):
            Database(42)

    def test_query_covers_edb_relations(self):
        result = Database(TC_SOURCE).query("edge")
        assert result == {(1, 2), (2, 3), (3, 4)}

    def test_unknown_relation_raises(self):
        with pytest.raises(KeyError, match="available"):
            Database(TC_SOURCE).query("nope")

    def test_schemas(self):
        program = build_reachability(columns=("src", "dst"))
        db = Database(program)
        assert db.schema("path") == ResultSchema.of("path", 2, ("src", "dst"))
        assert set(db.relations()) == {"edge", "path"}
        assert set(db.schemas()) == {"edge", "path"}

    def test_config_override_per_query(self):
        db = Database(TC_SOURCE, EngineConfig.interpreted())
        jit = db.query("path", config=EngineConfig.jit("lambda"))
        assert jit == TC_PATHS

    def test_close_closes_connections(self):
        db = Database(TC_SOURCE)
        conn = db.connect()
        db.close()
        assert conn.closed
        with pytest.raises(RuntimeError):
            db.connect()
        with pytest.raises(RuntimeError):
            db.query("path")

    def test_context_manager(self):
        with Database(TC_SOURCE) as db:
            conn = db.connect()
            assert conn.query("path") == TC_PATHS
        assert conn.closed


class TestConnection:
    def test_mutations_round_trip(self):
        db = Database(build_reachability())
        with db.connect() as conn:
            assert conn.query("path") == TC_PATHS
            report = conn.insert_facts("edge", [(4, 5)])
            assert report.inserted >= 1
            assert (1, 5) in conn.query("path")
            conn.retract_facts("edge", [(4, 5)])
            assert conn.query("path") == TC_PATHS
            assert conn.last_report is not None
            conn.self_check()

    def test_query_results_are_snapshots(self):
        db = Database(build_reachability())
        with db.connect() as conn:
            before = conn.query("path")
            conn.insert_facts("edge", [(4, 5)])
            assert before == TC_PATHS  # unchanged by the mutation
            assert conn.query("path") != before

    def test_query_without_argument_returns_all_idb(self):
        with Database(build_reachability()).connect() as conn:
            results = conn.query()
            assert isinstance(results, ResultSet)
            assert results == {"path": TC_PATHS}

    def test_unknown_relation_raises(self):
        with Database(TC_SOURCE).connect() as conn:
            with pytest.raises(KeyError, match="available"):
                conn.query("nope")

    def test_closed_connection_refuses_work(self):
        conn = Database(TC_SOURCE).connect()
        conn.close()
        conn.close()  # idempotent
        for call in (lambda: conn.query("path"),
                     lambda: conn.insert_facts("edge", [(8, 9)]),
                     lambda: conn.explain()):
            with pytest.raises(RuntimeError):
                call()

    def test_connections_share_the_database_cache(self):
        cache = ResultCache()
        db = Database(TC_SOURCE, cache=cache)
        with db.connect() as a, db.connect() as b:
            a.query("path")
            hits_before = cache.stats.hits
            b.query("path")  # replica: same program, same history -> cache hit
            assert cache.stats.hits > hits_before

    def test_parallel_connection_matches_single_shard(self):
        program = build_reachability()
        expected = Database(program).query("path")
        config = EngineConfig.parallel(shards=2)
        with Database(program, config).connect() as conn:
            assert conn.query("path") == expected
            conn.insert_facts("edge", [(4, 5), (5, 6)])
            reference = Database(conn.session.snapshot_program()).query("path")
            assert conn.query("path") == reference


class TestExplain:
    def test_explain_names_config_plan_and_decisions(self):
        db = Database(TC_SOURCE, EngineConfig.jit("lambda"))
        with db.connect() as conn:
            text = conn.query("path").explain()
        assert "jit-lambda" in text
        assert "relation: path" in text
        assert "plan (after any adaptive rewrites):" in text
        assert "Stratum" in text
        assert "adaptive join-order decisions" in text

    def test_engine_results_carry_explain_too(self):
        result = Database(TC_SOURCE, EngineConfig.interpreted()).query("path")
        text = result.explain()
        assert "interpreted" in text
        assert "path" in text

    def test_connection_explain_without_relation(self):
        with Database(TC_SOURCE).connect() as conn:
            conn.refresh()
            assert "configuration:" in conn.explain()

    def test_vectorized_explain_reports_batches_and_strategies(self):
        config = EngineConfig.jit("lambda").with_(executor="vectorized")
        text = Database(TC_SOURCE, config).query("path").explain()
        assert "executor=vectorized" in text
        assert "vectorized batches:" in text
        assert "vectorized plan strategies (latest per rule):" in text

"""The legacy entry points still work, set-like, with exactly one warning.

PR 1–2 users called ``Program.solve``, ``ExecutionEngine.run`` and
``IncrementalSession.query``.  Those call-forms survive as thin shims over
the Database API: each returns the legacy set-like shape (a mutable set /
dict-of-sets / frozenset, comparing equal to what the new API yields) and
emits exactly one ``DeprecationWarning`` naming its replacement.
"""

import warnings

import pytest

from repro import Database, EngineConfig, ExecutionEngine, Program, parse_program
from repro.incremental import IncrementalSession

TC_SOURCE = """
edge(1, 2). edge(2, 3). edge(3, 4).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

TC_PATHS = {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}


def build_program() -> Program:
    program = Program("reach")
    edge, path = program.relations("edge", "path", arity=2)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts([(1, 2), (2, 3), (3, 4)])
    return program


def assert_exactly_one_deprecation(recorded, replacement_hint):
    deprecations = [w for w in recorded if w.category is DeprecationWarning]
    assert len(deprecations) == 1, [str(w.message) for w in recorded]
    assert replacement_hint in str(deprecations[0].message)


class TestProgramSolveShim:
    def test_solve_with_relation_returns_plain_set(self):
        program = build_program()
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            result = program.solve("path")
        assert_exactly_one_deprecation(recorded, "database")
        assert type(result) is set
        assert result == TC_PATHS

    def test_solve_without_relation_returns_dict_of_sets(self):
        program = build_program()
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            result = program.solve()
        assert_exactly_one_deprecation(recorded, "database")
        assert type(result) is dict
        assert set(result) == {"path"}
        assert type(result["path"]) is set
        assert result["path"] == TC_PATHS

    def test_solve_unknown_relation_keeps_legacy_empty_set(self):
        program = build_program()
        with pytest.warns(DeprecationWarning):
            assert program.solve("no_such_relation") == set()

    def test_solve_edb_relation_keeps_legacy_empty_set(self):
        # The legacy solve() dict covered IDB relations only, so solve("edge")
        # returned set() — EDB reads belong to the new Database.query API.
        program = build_program()
        with pytest.warns(DeprecationWarning):
            assert program.solve("edge") == set()
        assert Database(program).query("edge") == {(1, 2), (2, 3), (3, 4)}

    def test_solve_accepts_config(self):
        program = build_program()
        with pytest.warns(DeprecationWarning):
            result = program.solve("path", EngineConfig.jit("lambda"))
        assert result == TC_PATHS

    def test_solve_agrees_with_database_query(self):
        program = build_program()
        modern = Database(program).query("path")
        with pytest.warns(DeprecationWarning):
            legacy = program.solve("path")
        assert modern == legacy


class TestEngineRunShim:
    def test_run_returns_dict_of_mutable_sets(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            results = engine.run()
        assert_exactly_one_deprecation(recorded, "evaluate")
        assert type(results) is dict
        assert type(results["path"]) is set
        assert results["path"] == TC_PATHS
        results["path"].add((9, 9))  # legacy callers could mutate their copy

    def test_run_agrees_with_evaluate(self):
        legacy_engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        with pytest.warns(DeprecationWarning):
            legacy = legacy_engine.run()
        modern = ExecutionEngine(
            parse_program(TC_SOURCE), EngineConfig.interpreted()
        ).evaluate()
        assert modern == legacy

    def test_run_still_refuses_to_rerun(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        with pytest.warns(DeprecationWarning):
            engine.run()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(RuntimeError):
                engine.run()


class TestSessionQueryShim:
    def test_query_returns_frozenset_and_warns_once(self):
        session = IncrementalSession(parse_program(TC_SOURCE))
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            result = session.query("path")
        assert_exactly_one_deprecation(recorded, "fetch")
        assert type(result) is frozenset
        assert result == TC_PATHS

    def test_query_agrees_with_fetch_and_connection(self):
        session = IncrementalSession(parse_program(TC_SOURCE))
        with pytest.warns(DeprecationWarning):
            legacy = session.query("path")
        assert legacy == session.fetch("path")
        with Database(TC_SOURCE).connect() as conn:
            assert conn.query("path") == legacy

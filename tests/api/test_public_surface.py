"""Public-API snapshot: ``repro.__all__`` and the signatures behind it.

Any change to the exported names or to a public signature must be made
deliberately: update the snapshot here in the same commit and mention the
change in the README migration notes.  ``scripts/smoke.sh`` runs this file
(and the examples) so silent API drift fails the smoke workflow.
"""

import inspect

import repro
from repro import (
    Connection,
    Database,
    EngineConfig,
    ExecutionEngine,
    Program,
    QueryResult,
    ResultSchema,
    ResultSet,
)
from repro.incremental import IncrementalSession

EXPECTED_ALL = [
    "AOTSortMode",
    "CancellationToken",
    "Cancelled",
    "CompilationGranularity",
    "Connection",
    "Database",
    "DeadlineExceeded",
    "DurabilityConfig",
    "DurabilityError",
    "EngineConfig",
    "ExecutionEngine",
    "ExecutionMode",
    "IncrementalSession",
    "Program",
    "QueryLimits",
    "QueryResult",
    "RelationHandle",
    "ResilienceError",
    "ResourceExhausted",
    "ResultSchema",
    "ResultSet",
    "ShardingConfig",
    "Variable",
    "WorkerFailed",
    "compare",
    "let",
    "parse_program",
    "__version__",
]


def sig(owner, name: str) -> str:
    """Normalised signature text (string-annotation quoting stripped)."""
    signature = str(inspect.signature(getattr(owner, name)))
    return signature.replace("'", "").replace('"', "")


EXPECTED_SIGNATURES = {
    # Database -----------------------------------------------------------------
    "Database.__init__": "(self, program: ProgramLike, config: Optional[EngineConfig] = None, cache: Optional[ResultCache] = None, name: str = database, durability=None) -> None",
    "Connection.checkpoint": "(self) -> int",
    "Database.connect": "(self, config: Optional[EngineConfig] = None) -> Connection",
    "Database.query": "(self, relation: Optional[str] = None, config: Optional[EngineConfig] = None)",
    "Database.schema": "(self, relation: str) -> ResultSchema",
    "Database.close": "(self) -> None",
    # Connection ---------------------------------------------------------------
    "Connection.query": "(self, relation: Optional[str] = None, limits=None, token=None)",
    "Connection.insert_facts": "(self, relation: str, rows) -> UpdateReport",
    "Connection.retract_facts": "(self, relation: str, rows) -> UpdateReport",
    "Connection.apply": "(self, inserts=None, retracts=None) -> UpdateReport",
    "Connection.explain": "(self, relation: Optional[str] = None, analyze: bool = False) -> str",
    "Connection.close": "(self) -> None",
    # QueryResult --------------------------------------------------------------
    "QueryResult.rows": "(self, offset: int = 0, limit: Optional[int] = None) -> Iterator[Row]",
    "QueryResult.take": "(self, n: int) -> List[Row]",
    "QueryResult.count": "(self) -> int",
    "QueryResult.first": "(self) -> Optional[Row]",
    "QueryResult.to_columns": "(self) -> Dict[str, List[Any]]",
    "QueryResult.to_dicts": "(self) -> List[Dict[str, Any]]",
    "QueryResult.explain": "(self) -> str",
    # ResultSet ----------------------------------------------------------------
    "ResultSet.explain": "(self) -> str",
    "ResultSet.to_sets": "(self) -> Dict[str, set]",
    # Program ------------------------------------------------------------------
    "Program.solve": "(self, relation: Optional[str] = None, config: Optional[EngineConfig] = None)",
    "Program.session": "(self, config: Optional[EngineConfig] = None) -> IncrementalSession",
    "Program.database": "(self, config: Optional[EngineConfig] = None) -> Database",
    "Program.relation": "(self, name: str, arity: Optional[int] = None, columns: Optional[Sequence[str]] = None) -> RelationHandle",
    # ExecutionEngine ----------------------------------------------------------
    "ExecutionEngine.evaluate": "(self) -> ResultSet",
    "ExecutionEngine.result": "(self, name: str) -> QueryResult",
    "ExecutionEngine.run": "(self) -> Dict[str, Set[Row]]",
    # IncrementalSession -------------------------------------------------------
    "IncrementalSession.fetch": "(self, relation: str, limits=None, token=None) -> FrozenSet[Row]",
    "IncrementalSession.query": "(self, relation: str) -> FrozenSet[Row]",
    "IncrementalSession.insert_facts": "(self, relation: str, rows: RowBatch) -> UpdateReport",
    "IncrementalSession.retract_facts": "(self, relation: str, rows: RowBatch) -> UpdateReport",
    # EngineConfig -------------------------------------------------------------
    "EngineConfig.parallel": "(shards: int = 2, base: Optional[EngineConfig] = None, pool: str = auto, shard_backend: str = auto, max_rounds: int = 1000000, **changes) -> EngineConfig",
    "EngineConfig.with_": "(self, **changes) -> EngineConfig",
    "EngineConfig.describe": "(self) -> str",
}

OWNERS = {
    "Database": Database,
    "Connection": Connection,
    "QueryResult": QueryResult,
    "ResultSet": ResultSet,
    "ResultSchema": ResultSchema,
    "Program": Program,
    "ExecutionEngine": ExecutionEngine,
    "IncrementalSession": IncrementalSession,
    "EngineConfig": EngineConfig,
}


def test_all_is_the_snapshot():
    assert repro.__all__ == EXPECTED_ALL


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_public_signatures_are_the_snapshot():
    drift = {}
    for key, expected in EXPECTED_SIGNATURES.items():
        owner_name, method = key.split(".", 1)
        actual = sig(OWNERS[owner_name], method)
        if actual != expected:
            drift[key] = actual
    assert not drift, f"public signatures drifted: {drift}"


def test_result_schema_is_frozen_value_type():
    schema = ResultSchema.of("edge", 2, ("src", "dst"))
    assert schema == ResultSchema("edge", 2, ("src", "dst"))
    try:
        schema.arity = 3
    except AttributeError:
        pass
    else:  # pragma: no cover - failure branch
        raise AssertionError("ResultSchema must be immutable")

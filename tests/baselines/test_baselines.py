"""Tests for the Soufflé-like and DLX-like baseline engines."""

import pytest

from repro.baselines import DLXLikeEngine, SouffleLikeEngine
from repro.core.config import EngineConfig
from repro.datalog.parser import parse_program
from repro.engine.engine import ExecutionEngine

SOURCE = """
edge(1, 2). edge(2, 3). edge(3, 4). edge(2, 4).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


def reference():
    return ExecutionEngine(parse_program(SOURCE), EngineConfig.interpreted()).evaluate()["path"]


class TestSouffleLike:
    def test_interpreter_mode_matches_reference(self):
        result = SouffleLikeEngine(mode="interpreter").run(parse_program(SOURCE))
        assert result.relations["path"] == reference()
        assert result.toolchain_seconds == 0.0
        assert result.profiling_seconds == 0.0

    def test_compiler_mode_adds_toolchain_cost(self):
        engine = SouffleLikeEngine(mode="compiler", toolchain_seconds=1.5)
        result = engine.run(parse_program(SOURCE))
        assert result.relations["path"] == reference()
        assert result.toolchain_seconds == 1.5
        assert result.reported_seconds >= 1.5

    def test_auto_tuned_mode_profiles_then_runs(self):
        engine = SouffleLikeEngine(mode="auto-tuned", toolchain_seconds=0.5)
        result = engine.run(parse_program(SOURCE))
        assert result.relations["path"] == reference()
        assert result.profiling_seconds > 0
        # Reported time excludes profiling (the paper's convention).
        assert result.reported_seconds < result.profiling_seconds + result.evaluation_seconds + 1.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SouffleLikeEngine(mode="jit")

    def test_auto_tuned_on_macro_benchmark(self):
        from repro.analyses import build_andersen_program
        from repro.workloads.program_facts import SListLibGenerator

        dataset = SListLibGenerator(seed=3).generate(list_length=6, extra_pipelines=0)
        program = build_andersen_program(dataset)
        expected = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()["pointsTo"]
        result = SouffleLikeEngine(mode="auto-tuned", toolchain_seconds=0.0).run(program)
        assert result.relations["pointsTo"] == expected


class TestDLXLike:
    def test_results_match_reference(self):
        result = DLXLikeEngine().run(parse_program(SOURCE))
        assert result.relations["path"] == reference()
        assert result.finished

    def test_timeout_marks_unfinished(self):
        result = DLXLikeEngine(timeout_iterations=1).run(parse_program(SOURCE))
        assert not result.finished

    def test_reported_seconds_positive(self):
        result = DLXLikeEngine().run(parse_program(SOURCE))
        assert result.reported_seconds > 0

"""The perf-regression gate (scripts/bench_compare.py) on synthetic JSON."""

import copy
import io
import json
import pathlib
import subprocess
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"
sys.path.insert(0, str(SCRIPTS))

import bench_compare  # noqa: E402


def harness_json(seconds_by_row):
    """A minimal repro.bench-shaped dump: one section, given row timings."""
    return {
        "harness": "repro.bench",
        "argv": ["--quick"],
        "total_seconds": sum(seconds_by_row.values()),
        "sections": {
            "vectorized": [
                {
                    "workload": workload,
                    "executor": "vectorized",
                    "equal": True,
                    "seconds": seconds,
                    "speedup": 1.0,
                }
                for workload, seconds in seconds_by_row.items()
            ]
        },
    }


BASELINE = harness_json({"tc_2k": 0.5, "cspa_tiny": 2.0})


def run_compare(baseline, fresh, **kwargs):
    out = io.StringIO()
    code = bench_compare.compare(baseline, fresh, out=out, **kwargs)
    return code, out.getvalue()


class TestCompare:
    def test_identical_runs_pass(self):
        code, text = run_compare(BASELINE, copy.deepcopy(BASELINE))
        assert code == 0
        assert "REGRESSION" not in text

    def test_small_noise_passes(self):
        fresh = harness_json({"tc_2k": 0.55, "cspa_tiny": 2.1})  # +10%, +5%
        code, text = run_compare(BASELINE, fresh)
        assert code == 0

    def test_two_x_slowdown_fails(self):
        code, text = run_compare(BASELINE, bench_compare.doctored(BASELINE))
        assert code == 1
        assert "** REGRESSION **" in text

    def test_single_row_regression_fails(self):
        fresh = harness_json({"tc_2k": 0.8, "cspa_tiny": 2.0})  # +60% one row
        code, text = run_compare(BASELINE, fresh)
        assert code == 1
        assert "tc_2k" in text and "** REGRESSION **" in text

    def test_regression_under_absolute_floor_is_noise(self):
        baseline = harness_json({"tiny": 0.002})
        fresh = harness_json({"tiny": 0.006})  # +200% but only +4 ms
        code, text = run_compare(baseline, fresh)
        assert code == 0

    def test_improvement_passes(self):
        fresh = harness_json({"tc_2k": 0.1, "cspa_tiny": 0.5})
        code, _ = run_compare(BASELINE, fresh)
        assert code == 0

    def test_missing_section_is_structural_mismatch(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["sections"] = {}
        code, text = run_compare(BASELINE, fresh)
        assert code == 2
        assert "MISMATCH" in text

    def test_missing_row_is_structural_mismatch(self):
        fresh = harness_json({"tc_2k": 0.5})
        code, text = run_compare(BASELINE, fresh)
        assert code == 2
        assert "cspa_tiny" in text

    def test_threshold_is_configurable(self):
        fresh = harness_json({"tc_2k": 0.55, "cspa_tiny": 2.2})  # +10% each
        code, _ = run_compare(BASELINE, fresh, threshold=0.05)
        assert code == 1


class TestRowSemantics:
    def test_identity_ignores_measurement_columns(self):
        row = {"workload": "tc_2k", "seconds": 0.5, "speedup": 2.0,
               "equal": True, "executor": "vectorized"}
        identity = bench_compare.row_identity(row)
        keys = [key for key, _value in identity]
        assert "seconds" not in keys and "speedup" not in keys
        assert "workload" in keys and "executor" in keys

    def test_row_seconds_sums_timing_columns(self):
        row = {"seconds": 0.5, "setup_seconds": 0.2, "speedup": 9.0}
        assert bench_compare.row_seconds(row) == pytest.approx(0.7)

    def test_doctored_scales_only_timings(self):
        slowed = bench_compare.doctored(BASELINE, factor=2.0)
        row = slowed["sections"]["vectorized"][0]
        original = BASELINE["sections"]["vectorized"][0]
        assert row["seconds"] == original["seconds"] * 2
        assert row["speedup"] == original["speedup"]


class TestSelfTestAndCli:
    def test_self_test_passes_on_sane_gate(self):
        out = io.StringIO()
        assert bench_compare.self_test(copy.deepcopy(BASELINE), out=out) == 0
        assert "self-test OK" in out.getvalue()

    def test_cli_round_trip(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(BASELINE))
        fresh_path.write_text(json.dumps(bench_compare.doctored(BASELINE)))
        ok = subprocess.run(
            [sys.executable, str(SCRIPTS / "bench_compare.py"),
             str(baseline_path), str(baseline_path)],
            capture_output=True, text=True,
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        slow = subprocess.run(
            [sys.executable, str(SCRIPTS / "bench_compare.py"),
             str(baseline_path), str(fresh_path)],
            capture_output=True, text=True,
        )
        assert slow.returncode == 1

    def test_committed_baseline_self_tests(self):
        """The baseline committed for CI keeps the gate honest."""
        baseline_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "baseline.json"
        )
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        out = io.StringIO()
        assert bench_compare.self_test(baseline, out=out) == 0
        assert set(baseline["sections"]) == {
            "parallel", "vectorized", "interning", "telemetry", "resilience",
            "serving", "durability",
        }

"""Tests for the benchmark harness (measurement, drivers, formatting).

The drivers are exercised at tiny scales — the goal is to verify plumbing
(every expected column is produced, speedups are finite and positive), not to
reproduce the paper's numbers, which `python -m repro.bench` does at full
default scale.
"""

import math

import pytest

from repro.analyses.ordering import Ordering
from repro.bench.configurations import (
    fig10_configurations,
    jit_configurations,
    table1_configurations,
)
from repro.bench.fig10 import run_fig10
from repro.bench.fig5 import run_fig5
from repro.bench.fig67 import run_fig7
from repro.bench.fig89 import run_fig9
from repro.bench.formatting import format_rows
from repro.bench.measurement import measure_benchmark, measure_program, speedup
from repro.bench.table1 import run_table1
from repro.bench.table2 import run_table2
from repro.core.config import EngineConfig
from repro.datalog.parser import parse_program


class TestMeasurement:
    def test_measure_program_reports_result_size(self):
        program = parse_program(
            "edge(1, 2). edge(2, 3). path(X, Y) :- edge(X, Y)."
            " path(X, Z) :- path(X, Y), edge(Y, Z)."
        )
        result = measure_program(program, EngineConfig.interpreted(), "path",
                                 benchmark="tc", ordering="written")
        assert result.result_size == 3
        assert result.seconds > 0
        assert result.benchmark == "tc"
        assert result.as_row()["configuration"] == "interpreted+idx"

    def test_measure_benchmark_by_name(self):
        result = measure_benchmark("fibonacci", EngineConfig.interpreted(), Ordering.OPTIMIZED)
        assert result.result_size == 25
        assert result.iterations > 0

    def test_repeat_averages(self):
        result = measure_benchmark("fibonacci", EngineConfig.interpreted(), repeat=2)
        assert result.runs == 2

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert math.isinf(speedup(1.0, 0.0))


class TestConfigurationSets:
    def test_jit_configuration_labels(self):
        labels = [label for label, _ in jit_configurations(use_indexes=True)]
        assert "JIT Quotes Async" in labels and "JIT IRGenerator" in labels
        assert len(labels) == 6

    def test_table1_configurations(self):
        configs = table1_configurations()
        assert set(configs) == {"indexed", "unindexed"}
        assert configs["unindexed"].use_indexes is False

    def test_fig10_configurations(self):
        labels = [label for label, _ in fig10_configurations()]
        assert labels[0] == "JIT-lambda"
        assert any("Macro Rules" in label for label in labels)


class TestDrivers:
    def test_table1_row_structure(self):
        rows = run_table1(benchmarks=["fibonacci"])
        assert len(rows) == 1
        row = rows[0]
        assert {"unindexed_unoptimized", "indexed_optimized"} <= set(row)
        assert row["indexed_optimized"] > 0

    def test_table2_row_structure(self):
        rows = run_table2(benchmarks=["andersen"], toolchain_seconds=0.01)
        row = rows[0]
        for column in ("dlx", "souffle_interpreter", "souffle_compiler",
                       "souffle_auto_tuned", "carac_jit"):
            assert row[column] > 0

    def test_fig5_rows(self):
        rows = run_fig5(benchmark="cspa_tiny", warm_compilations=2, backends=("quotes",))
        assert rows
        for row in rows:
            assert row["cold_seconds"] > 0
            assert row["warm_seconds"] > 0
        granularities = {row["granularity"] for row in rows}
        assert "JoinProjectOp" in granularities

    def test_fig7_speedups_positive(self):
        rows = run_fig7(benchmarks=["fibonacci"], include_unindexed=False)
        row = rows[0]
        assert row["Hand-Optimized"] > 0
        assert all(
            row[label] > 0 for label, _ in jit_configurations(use_indexes=True)
        )

    def test_fig9_speedups_positive(self):
        rows = run_fig9(benchmarks=["fibonacci"], include_unindexed=False)
        row = rows[0]
        assert all(row[label] > 0 for label, _ in jit_configurations(use_indexes=True))

    def test_fig10_rows(self):
        rows = run_fig10(benchmarks=["fibonacci"])
        row = rows[0]
        assert "Macro Facts+rules" in row
        assert row["JIT-lambda"] > 0


class TestServingDriver:
    def test_serving_rows_have_every_column(self):
        from repro.bench.serving import SERVING_COLUMNS, run_serving

        rows = run_serving(quick=True, client_counts=(2,),
                           requests_per_client=5)
        assert len(rows) == 2  # one per mix
        for row in rows:
            assert set(row) == set(SERVING_COLUMNS)
            assert row["errors"] == 0
            assert row["requests"] == 10
            assert row["ops_per_sec"] > 0
            assert row["p50_ms"] <= row["p99_ms"]

    def test_percentile_nearest_rank(self):
        from repro.bench.serving import percentile

        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 0.99) == 5.0
        assert percentile([], 0.5) == 0.0


class TestFormatting:
    def test_format_rows_alignment_and_title(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 22, "b": 7.0}]
        text = format_rows(rows, ("a", "b"), title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_rows_empty(self):
        assert "(no rows)" in format_rows([], title="x")


class TestMemoryMeasurement:
    def test_measure_memory_reports_retained_and_peak(self):
        from repro.bench.measurement import measure_memory

        def build():
            return [("x" * 64) + str(i) for i in range(2_000)]

        result, memory = measure_memory(build)
        assert len(result) == 2_000
        assert memory.retained_bytes > 100_000          # ~2k strings kept alive
        assert memory.peak_bytes >= memory.retained_bytes
        assert memory.retained_mb() == pytest.approx(
            memory.retained_bytes / (1024 * 1024)
        )

    def test_transient_allocations_are_not_retained(self):
        from repro.bench.measurement import measure_memory

        def churn():
            waste = [("y" * 64) + str(i) for i in range(2_000)]
            return len(waste)

        _result, memory = measure_memory(churn)
        assert memory.peak_bytes > 100_000
        assert memory.retained_bytes < memory.peak_bytes / 4

    def test_nested_measurements_propagate_the_peak(self):
        from repro.bench.measurement import measure_memory

        def inner():
            waste = [("z" * 64) + str(i) for i in range(4_000)]
            return len(waste)

        def outer():
            # The inner call's reset_peak would otherwise clobber the
            # enclosing high-water mark; its observed peak must surface
            # in the outer measurement.
            _count, inner_memory = measure_memory(inner)
            assert inner_memory.peak_bytes > 200_000
            return inner_memory

        inner_memory, outer_memory = measure_memory(outer)
        assert outer_memory.peak_bytes >= inner_memory.peak_bytes


class TestInterningSection:
    def test_quick_rows_have_expected_shape(self):
        from repro.bench.interning import INTERNING_COLUMNS, run_interning

        rows = run_interning(
            workloads=[],
            memory_scale=(500, 100),
        )
        assert all(set(INTERNING_COLUMNS) <= set(row) for row in rows)
        by_codec = {row["codec"]: row for row in rows}
        assert by_codec["interned"]["equal"] is True
        assert by_codec["interned"]["mem_ratio"] > 1.0
        assert by_codec["raw"]["retained_mb"] > by_codec["interned"]["retained_mb"]

    def test_speed_rows_compare_raw_and_interned(self):
        from repro.bench.interning import run_interning, tc_workload

        rows = run_interning(
            workloads=[tc_workload(edge_count=60, nodes=40)],
            memory_scale=(200, 50),
        )
        speed = [row for row in rows if row["seconds"] is not None]
        assert {row["codec"] for row in speed} == {"raw", "interned"}
        assert all(row["equal"] for row in speed)
        assert all(row["seconds"] > 0 for row in speed)

    def test_load_streamed_matches_bulk_load(self):
        from repro.bench.interning import load_streamed
        from repro.relational.storage import StorageManager
        from repro.relational.symbols import SymbolTable

        rows = [((f"k{i % 7}", i % 5), (f"k{i % 3}", i % 4)) for i in range(40)]
        streamed = StorageManager(symbols=SymbolTable())
        streamed.declare("edge", 2)
        load_streamed(streamed, "edge", iter(rows), chunk=8)
        assert streamed.decoded_tuples("edge") == set(rows)


class TestSectionSelection:
    def test_only_accepts_comma_separated_sections(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--quick", "--only", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out

    def test_only_rejects_unknown_sections(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "fig5,nope"])

    def test_only_rejects_an_empty_selection(self):
        # e.g. --only "$UNSET_VAR" in a CI script: running zero sections
        # and exiting 0 would let a perf gate pass on no data.
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", ""])
        with pytest.raises(SystemExit):
            main(["--only", " , "])

"""Unit tests for the four compilation backends."""

import pytest

from repro.core.backends import (
    BytecodeBackend,
    IRGeneratorBackend,
    LambdaBackend,
    QuotesBackend,
    available_backends,
    get_backend,
)
from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.ir.planning import build_join_plan
from repro.relational.storage import StorageManager

x, y, z = Variable("x"), Variable("y"), Variable("z")

ALL_BACKENDS = ["quotes", "bytecode", "lambda", "irgen"]


def graph_storage() -> StorageManager:
    storage = StorageManager()
    storage.declare("edge", 2)
    storage.declare("path", 2)
    storage.declare("blocked", 1)
    storage.insert_derived("edge", (1, 2))
    storage.insert_derived("edge", (2, 3))
    storage.insert_derived("edge", (3, 4))
    storage.seed_delta("path", [(1, 2), (2, 3), (3, 4)])
    storage.insert_derived("blocked", (4,))
    return storage


def tc_plan(delta=True):
    rule = Rule(Atom("path", (x, z)), (Atom("path", (x, y)), Atom("edge", (y, z))), "tc")
    return build_join_plan(rule, delta_index=0 if delta else None)


def builtin_plan():
    rule = Rule(
        Atom("p", (x, z)),
        (
            Atom("edge", (x, y)),
            Atom("blocked", (y,), negated=True),
            Comparison("<", x, Constant(4)),
            Assignment(z, y * 10),
        ),
    )
    return build_join_plan(rule)


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_get_backend_by_name(self):
        assert get_backend("quotes").name == "quotes"
        assert get_backend("lambda").name == "lambda"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("llvm")


class TestCompilationCorrectness:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_simple_join(self, name):
        storage = graph_storage()
        backend = get_backend(name)
        artifact = backend.compile_plans([tc_plan()], storage)
        assert artifact(storage) == {(1, 3), (2, 4)}

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_matches_reference_evaluator(self, name):
        from repro.relational.operators import evaluate_subquery

        storage = graph_storage()
        for plan in (tc_plan(True), tc_plan(False), builtin_plan()):
            reference = evaluate_subquery(storage, plan)
            artifact = get_backend(name).compile_plans([plan], storage)
            assert artifact(storage) == reference

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_union_of_plans(self, name):
        from repro.relational.operators import evaluate_subquery

        storage = graph_storage()
        plans = [tc_plan(True), builtin_plan()]
        reference = set()
        for plan in plans:
            reference |= evaluate_subquery(storage, plan)
        artifact = get_backend(name).compile_plans(plans, storage)
        assert artifact(storage) == reference

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_artifact_sees_storage_changes(self, name):
        """Artifacts must re-read relations at call time (safe-point property)."""
        storage = graph_storage()
        artifact = get_backend(name).compile_plans([tc_plan(delta=False)], storage)
        before = artifact(storage)
        storage.insert_derived("path", (4, 5))
        storage.insert_derived("edge", (5, 6))
        after = artifact(storage)
        assert before < after

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_indexes_do_not_change_results(self, name):
        storage = graph_storage()
        unindexed = get_backend(name).compile_plans([tc_plan()], storage, use_indexes=False)
        result_without = unindexed(storage)
        storage.register_index("edge", 0)
        storage.register_index("path", 1)
        indexed = get_backend(name).compile_plans([tc_plan()], storage, use_indexes=True)
        assert indexed(storage) == result_without


class TestBackendProperties:
    def test_compile_seconds_recorded(self):
        storage = graph_storage()
        artifact = QuotesBackend().compile_plans([tc_plan()], storage)
        assert artifact.compile_seconds > 0
        assert artifact.backend == "quotes"

    def test_quotes_snippet_mode_uses_continuations(self):
        storage = graph_storage()
        continuations = [lambda s: {(9, 9)}]
        artifact = QuotesBackend().compile_plans(
            [tc_plan()], storage, mode="snippet", continuations=continuations
        )
        assert artifact(storage) == {(9, 9)}
        assert artifact.mode == "snippet"

    def test_lambda_snippet_mode(self):
        storage = graph_storage()
        artifact = LambdaBackend().compile_plans(
            [tc_plan()], storage, mode="snippet", continuations=[lambda s: {(7,)}]
        )
        assert artifact(storage) == {(7,)}

    def test_bytecode_has_no_snippet_mode(self):
        storage = graph_storage()
        artifact = BytecodeBackend().compile_plans(
            [tc_plan()], storage, mode="snippet", continuations=[lambda s: {(7,)}]
        )
        # Falls back to full compilation: evaluates the plan, not the continuation.
        assert artifact.mode == "full"
        assert (1, 3) in artifact(storage)

    def test_quotes_generated_source_is_attached(self):
        storage = graph_storage()
        backend = QuotesBackend()
        artifact = backend.compile_plans([tc_plan()], storage)
        assert "def " in artifact.function.generated_source

    def test_generate_source_without_compiling(self):
        storage = graph_storage()
        source = QuotesBackend().generate_source([tc_plan()], storage)
        assert "storage.relation('path'" in source

    def test_revertibility_flags(self):
        assert QuotesBackend.revertible and LambdaBackend.revertible
        assert IRGeneratorBackend.revertible
        assert not BytecodeBackend.revertible

    def test_compiler_invocation_flags(self):
        assert QuotesBackend.invokes_compiler and BytecodeBackend.invokes_compiler
        assert not LambdaBackend.invokes_compiler
        assert not IRGeneratorBackend.invokes_compiler

"""Unit tests for plan lowering and the two code-generation renderers."""

import ast

import pytest

from repro.core.codegen.pyast import build_plan_function_ast, build_union_module_ast
from repro.core.codegen.source import (
    render_plan_function,
    render_snippet_function,
    render_union_module,
    term_to_source,
)
from repro.core.codegen.steps import (
    AssignStep,
    ConditionStep,
    EmitStep,
    LoopStep,
    NegationStep,
    lower_plan,
)
from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.ir.planning import build_join_plan
from repro.relational.storage import DatabaseKind, StorageManager

x, y, z = Variable("x"), Variable("y"), Variable("z")


def graph_storage() -> StorageManager:
    storage = StorageManager()
    storage.declare("edge", 2)
    storage.declare("path", 2)
    storage.declare("blocked", 1)
    storage.insert_derived("edge", (1, 2))
    storage.insert_derived("edge", (2, 3))
    storage.seed_delta("path", [(1, 2), (2, 3)])
    storage.insert_derived("blocked", (3,))
    return storage


def tc_plan(delta=True):
    rule = Rule(Atom("path", (x, z)), (Atom("path", (x, y)), Atom("edge", (y, z))), "tc")
    return build_join_plan(rule, delta_index=0 if delta else None)


class TestLowering:
    def test_loop_steps_and_emit(self):
        lowered = lower_plan(tc_plan())
        loops = [s for s in lowered.steps if isinstance(s, LoopStep)]
        assert len(loops) == 2
        assert isinstance(lowered.steps[-1], EmitStep)
        assert loops[0].kind == DatabaseKind.DELTA_KNOWN

    def test_join_check_on_second_atom(self):
        lowered = lower_plan(tc_plan())
        second = [s for s in lowered.steps if isinstance(s, LoopStep)][1]
        assert second.checks, "the shared variable y must appear as a check"

    def test_index_probe_chosen_when_available(self):
        lowered = lower_plan(tc_plan(), index_view=lambda r, c: r == "edge" and c == 0)
        second = [s for s in lowered.steps if isinstance(s, LoopStep)][1]
        assert second.lookup_column == 0
        assert second.checks == []

    def test_no_probe_when_indexes_disabled(self):
        lowered = lower_plan(
            tc_plan(), index_view=lambda r, c: True, use_indexes=False
        )
        assert all(s.lookup_column is None for s in lowered.steps if isinstance(s, LoopStep))

    def test_constant_becomes_check(self):
        rule = Rule(Atom("p", (y,)), (Atom("edge", (Constant(1), y)),))
        lowered = lower_plan(build_join_plan(rule))
        loop = lowered.steps[0]
        assert loop.checks and loop.checks[0][0] == 0

    def test_repeated_variable_becomes_intra_check(self):
        rule = Rule(Atom("p", (x,)), (Atom("edge", (x, x)),))
        lowered = lower_plan(build_join_plan(rule))
        assert lowered.steps[0].intra_checks == [(0, 1)]

    def test_negation_comparison_assignment_steps(self):
        rule = Rule(
            Atom("p", (x, z)),
            (
                Atom("edge", (x, y)),
                Atom("blocked", (y,), negated=True),
                Comparison("<", x, Constant(5)),
                Assignment(z, y + 10),
            ),
        )
        lowered = lower_plan(build_join_plan(rule))
        kinds = [type(s).__name__ for s in lowered.steps]
        assert kinds == ["LoopStep", "NegationStep", "ConditionStep", "AssignStep", "EmitStep"]


class TestSourceRenderer:
    def test_generated_source_compiles_and_runs(self):
        storage = graph_storage()
        lowered = lower_plan(tc_plan())
        source = render_plan_function(lowered, "subquery")
        namespace = {"DatabaseKind": DatabaseKind}
        exec(compile(source, "<test>", "exec"), namespace)
        assert namespace["subquery"](storage) == {(1, 3)}

    def test_union_module_runs_all_subqueries(self):
        storage = graph_storage()
        plans = [tc_plan(delta=True), tc_plan(delta=False)]
        lowered = [lower_plan(p) for p in plans]
        source, driver = render_union_module(lowered, "m")
        namespace = {"DatabaseKind": DatabaseKind}
        exec(compile(source, "<test>", "exec"), namespace)
        assert namespace[driver](storage) == {(1, 3)}

    def test_snippet_function_calls_continuations(self):
        source = render_snippet_function("snippet", 2)
        namespace = {}
        exec(compile(source, "<test>", "exec"), namespace)
        result = namespace["snippet"](None, [lambda s: {(1,)}, lambda s: {(2,)}])
        assert result == {(1,), (2,)}

    def test_term_to_source_rejects_unbound_variable(self):
        with pytest.raises(KeyError):
            term_to_source(Variable("nope"), {})

    def test_generated_source_mentions_relations(self):
        lowered = lower_plan(tc_plan())
        source = render_plan_function(lowered, "f")
        assert "'path'" in source and "'edge'" in source


class TestAstRenderer:
    def test_ast_function_compiles_and_runs(self):
        storage = graph_storage()
        lowered = lower_plan(tc_plan())
        function_def = build_plan_function_ast(lowered, "subquery")
        module = ast.Module(body=[function_def], type_ignores=[])
        ast.fix_missing_locations(module)
        namespace = {"DatabaseKind": DatabaseKind}
        exec(compile(module, "<test>", "exec"), namespace)
        assert namespace["subquery"](storage) == {(1, 3)}

    def test_union_module_ast_matches_source_renderer(self):
        storage = graph_storage()
        plans = [tc_plan(delta=True), tc_plan(delta=False)]
        lowered = [lower_plan(p) for p in plans]
        module, driver = build_union_module_ast(lowered, "m")
        namespace = {"DatabaseKind": DatabaseKind}
        exec(compile(module, "<test>", "exec"), namespace)
        ast_result = namespace[driver](storage)

        source, source_driver = render_union_module(
            [lower_plan(p) for p in plans], "m2"
        )
        namespace2 = {"DatabaseKind": DatabaseKind}
        exec(compile(source, "<test>", "exec"), namespace2)
        assert ast_result == namespace2[source_driver](storage)

    def test_ast_handles_builtins(self):
        storage = graph_storage()
        rule = Rule(
            Atom("p", (x, z)),
            (
                Atom("edge", (x, y)),
                Atom("blocked", (y,), negated=True),
                Comparison("<", x, Constant(5)),
                Assignment(z, y + 10),
            ),
        )
        lowered = lower_plan(build_join_plan(rule))
        module, driver = build_union_module_ast([lowered], "b")
        namespace = {"DatabaseKind": DatabaseKind}
        exec(compile(module, "<test>", "exec"), namespace)
        assert namespace[driver](storage) == {(1, 12)}

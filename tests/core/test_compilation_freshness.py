"""Unit tests for the compilation manager and the freshness test."""

import time

import pytest

from repro.core.backends import LambdaBackend, QuotesBackend
from repro.core.compilation import CompilationManager
from repro.core.freshness import FreshnessTest
from repro.datalog.literals import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.ir.planning import build_join_plan
from repro.relational.statistics import CardinalitySnapshot, take_snapshot
from repro.relational.storage import StorageManager

x, y, z = Variable("x"), Variable("y"), Variable("z")


def graph_storage() -> StorageManager:
    storage = StorageManager()
    storage.declare("edge", 2)
    storage.declare("path", 2)
    storage.insert_derived("edge", (1, 2))
    storage.insert_derived("edge", (2, 3))
    storage.seed_delta("path", [(1, 2), (2, 3)])
    return storage


def tc_plan():
    rule = Rule(Atom("path", (x, z)), (Atom("path", (x, y)), Atom("edge", (y, z))), "tc")
    return build_join_plan(rule, delta_index=0)


class TestSynchronousCompilation:
    def test_compile_now_caches_artifact(self):
        storage = graph_storage()
        manager = CompilationManager(LambdaBackend(), asynchronous=False)
        snapshot = take_snapshot(storage)
        artifact = manager.compile_now(1, [tc_plan()], storage, snapshot)
        assert manager.current_artifact(1) is artifact
        assert manager.artifact_snapshot(1) is snapshot
        assert manager.compile_count() == 1
        assert manager.total_compile_seconds() >= 0

    def test_invalidate_clears_cache(self):
        storage = graph_storage()
        manager = CompilationManager(LambdaBackend(), asynchronous=False)
        manager.compile_now(1, [tc_plan()], storage, take_snapshot(storage))
        manager.invalidate(1)
        assert manager.current_artifact(1) is None

    def test_events_record_backend_and_mode(self):
        storage = graph_storage()
        manager = CompilationManager(QuotesBackend(), asynchronous=False)
        manager.compile_now(7, [tc_plan()], storage, take_snapshot(storage))
        event = manager.events[0]
        assert event.backend == "quotes"
        assert event.node_id == 7
        assert not event.asynchronous


class TestAsynchronousCompilation:
    def test_async_compile_becomes_available(self):
        storage = graph_storage()
        with CompilationManager(LambdaBackend(), asynchronous=True) as manager:
            manager.compile_async(1, [tc_plan()], storage, take_snapshot(storage))
            deadline = time.time() + 5.0
            artifact = None
            while artifact is None and time.time() < deadline:
                artifact = manager.current_artifact(1)
                time.sleep(0.01)
            assert artifact is not None
            assert artifact(storage) == {(1, 3)}
            assert manager.events and manager.events[0].asynchronous

    def test_duplicate_async_requests_are_coalesced(self):
        storage = graph_storage()
        with CompilationManager(QuotesBackend(), asynchronous=True) as manager:
            snapshot = take_snapshot(storage)
            manager.compile_async(1, [tc_plan()], storage, snapshot)
            manager.compile_async(1, [tc_plan()], storage, snapshot)
            deadline = time.time() + 5.0
            while manager.current_artifact(1) is None and time.time() < deadline:
                time.sleep(0.01)
            assert manager.compile_count() == 1

    def test_async_manager_without_executor_degrades_to_blocking(self):
        storage = graph_storage()
        manager = CompilationManager(LambdaBackend(), asynchronous=False)
        manager.compile_async(2, [tc_plan()], storage, take_snapshot(storage))
        assert manager.current_artifact(2) is not None


class TestFreshness:
    def snapshot(self, cards):
        return CardinalitySnapshot(0, dict(cards), {})

    def test_missing_compile_snapshot_is_stale(self):
        test = FreshnessTest(threshold=0.5)
        assert test.is_stale(None, self.snapshot({"a": 10}))

    def test_small_change_is_fresh(self):
        test = FreshnessTest(threshold=0.5)
        old = self.snapshot({"a": 100})
        new = self.snapshot({"a": 120})
        assert test.is_fresh(old, new)

    def test_large_change_is_stale(self):
        test = FreshnessTest(threshold=0.5)
        old = self.snapshot({"a": 100})
        new = self.snapshot({"a": 500})
        assert test.is_stale(old, new)

    def test_threshold_is_respected(self):
        old = self.snapshot({"a": 100})
        new = self.snapshot({"a": 140})
        assert FreshnessTest(threshold=0.5).is_fresh(old, new)
        assert FreshnessTest(threshold=0.1).is_stale(old, new)

"""Unit tests for EngineConfig helpers and the ahead-of-time optimizer."""

import pytest

from repro.core.aot import apply_aot_optimization
from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
)
from repro.core.join_order import JoinOrderOptimizer
from repro.core.profile import RuntimeProfile
from repro.datalog.parser import parse_program
from repro.ir.builder import build_program_ir
from repro.ir.ops import JoinProjectOp, find_nodes
from repro.relational.storage import StorageManager


class TestEngineConfig:
    def test_describe_names(self):
        assert EngineConfig.interpreted().describe() == "interpreted+idx"
        assert EngineConfig.interpreted(False).describe() == "interpreted"
        assert EngineConfig.naive().describe() == "naive"
        assert EngineConfig.jit("quotes", asynchronous=True).describe() == (
            "jit-quotes-async-rule"
        )
        assert EngineConfig.aot(online=True).describe() == "macro-facts+online"

    def test_label_overrides_description(self):
        assert EngineConfig(label="custom").describe() == "custom"

    def test_with_creates_modified_copy(self):
        base = EngineConfig.jit("lambda")
        changed = base.with_(use_indexes=False)
        assert base.use_indexes and not changed.use_indexes
        assert changed.backend == "lambda"


class TestShardedConfigRoundTrip:
    """`with_` / `describe` round-trips for parallel configurations."""

    def test_with_preserves_sharding(self):
        config = EngineConfig.parallel(shards=4, base=EngineConfig.jit("lambda"))
        changed = config.with_(use_indexes=False)
        assert changed.sharding is not None and changed.sharding.shards == 4
        assert changed.describe().endswith("x4")

    def test_with_routes_sharding_keys_into_nested_config(self):
        config = EngineConfig.parallel(shards=4)
        resharded = config.with_(shards=2)
        assert resharded.sharding.shards == 2
        assert resharded.describe().endswith("x2")
        assert config.sharding.shards == 4  # original untouched
        pooled = config.with_(pool="serial", shard_backend="none")
        assert pooled.sharding.pool == "serial"
        assert pooled.sharding.shard_backend == "none"
        assert pooled.sharding.shards == 4

    def test_with_shards_on_unsharded_config_enables_sharding(self):
        config = EngineConfig.jit("lambda").with_(shards=3)
        assert config.sharding is not None and config.sharding.shards == 3
        assert config.describe().endswith("x3")

    def test_mixed_engine_and_sharding_changes(self):
        config = EngineConfig.parallel(shards=4).with_(
            mode=ExecutionMode.JIT, shards=2
        )
        assert config.mode == ExecutionMode.JIT
        assert config.sharding.shards == 2

    def test_labeled_parallel_config_prints_shard_count(self):
        config = EngineConfig.parallel(shards=4, label="myconfig")
        assert config.describe() == "myconfigx4"
        # Appended unconditionally — no substring guessing, so a label that
        # merely looks like it ends in a shard count stays unambiguous.
        assert EngineConfig.parallel(shards=2, label="index2").describe() == "index2x2"
        # Unsharded labels are untouched.
        assert EngineConfig(label="plain").describe() == "plain"

    def test_sharding_config_with_(self):
        sharding = EngineConfig.parallel(shards=2).sharding
        assert sharding.with_(shards=8).shards == 8
        assert sharding.with_(pool="thread").pool == "thread"
        assert sharding.shards == 2

    def test_factories_set_modes(self):
        assert EngineConfig.jit("irgen").mode == ExecutionMode.JIT
        assert EngineConfig.aot().mode == ExecutionMode.AOT
        assert EngineConfig.naive().mode == ExecutionMode.NAIVE
        assert EngineConfig.jit("lambda", granularity=CompilationGranularity.JOIN
                                ).granularity == CompilationGranularity.JOIN


SOURCE = """
big(1, 2). big(2, 3). big(3, 4). big(4, 5). big(5, 6). big(6, 7).
small(2, 3).
joined(X, Z) :- big(X, Y), small(Y, Z).
closure(X, Y) :- joined(X, Y).
closure(X, Z) :- closure(X, Y), joined(Y, Z).
"""


class TestAOTOptimization:
    def build(self):
        program = parse_program(SOURCE)
        storage = StorageManager(program)
        tree = build_program_ir(program)
        return program, storage, tree

    def test_none_mode_changes_nothing(self):
        _, storage, tree = self.build()
        changed = apply_aot_optimization(
            tree, JoinOrderOptimizer(), storage, AOTSortMode.NONE
        )
        assert changed == 0

    def test_facts_and_rules_uses_cardinalities(self):
        _, storage, tree = self.build()
        changed = apply_aot_optimization(
            tree, JoinOrderOptimizer(), storage, AOTSortMode.FACTS_AND_RULES
        )
        assert changed >= 1
        joined_plans = [
            node.plan for node in find_nodes(tree, JoinProjectOp)
            if node.plan.rule_name.startswith("joined")
        ]
        for plan in joined_plans:
            first = plan.sources[0].literal
            assert first.relation == "small"

    def test_rules_only_mode_requires_no_storage(self):
        _, _, tree = self.build()
        changed = apply_aot_optimization(
            tree, JoinOrderOptimizer(), None, AOTSortMode.RULES_ONLY
        )
        assert changed >= 0

    def test_facts_mode_without_storage_rejected(self):
        _, _, tree = self.build()
        with pytest.raises(ValueError):
            apply_aot_optimization(
                tree, JoinOrderOptimizer(), None, AOTSortMode.FACTS_AND_RULES
            )

    def test_profile_records_aot_stage(self):
        _, storage, tree = self.build()
        profile = RuntimeProfile()
        apply_aot_optimization(
            tree, JoinOrderOptimizer(), storage, AOTSortMode.FACTS_AND_RULES,
            profile=profile,
        )
        assert profile.reorders
        assert all(record.stage == "aot" for record in profile.reorders)

    def test_aot_preserves_results(self):
        from repro.engine.engine import ExecutionEngine

        program = parse_program(SOURCE)
        reference = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()
        for sort in (AOTSortMode.RULES_ONLY, AOTSortMode.FACTS_AND_RULES):
            result = ExecutionEngine(
                program.copy(), EngineConfig.aot(sort=sort)
            ).evaluate()
            assert result == reference

"""Unit tests for EngineConfig helpers and the ahead-of-time optimizer."""

import pytest

from repro.core.aot import apply_aot_optimization
from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
)
from repro.core.join_order import JoinOrderOptimizer
from repro.core.profile import RuntimeProfile
from repro.datalog.parser import parse_program
from repro.ir.builder import build_program_ir
from repro.ir.ops import JoinProjectOp, find_nodes
from repro.relational.storage import StorageManager


class TestEngineConfig:
    def test_describe_names(self):
        assert EngineConfig.interpreted().describe() == "interpreted+idx"
        assert EngineConfig.interpreted(False).describe() == "interpreted"
        assert EngineConfig.naive().describe() == "naive"
        assert EngineConfig.jit("quotes", asynchronous=True).describe() == (
            "jit-quotes-async-rule"
        )
        assert EngineConfig.aot(online=True).describe() == "macro-facts+online"

    def test_label_overrides_description(self):
        assert EngineConfig(label="custom").describe() == "custom"

    def test_with_creates_modified_copy(self):
        base = EngineConfig.jit("lambda")
        changed = base.with_(use_indexes=False)
        assert base.use_indexes and not changed.use_indexes
        assert changed.backend == "lambda"

    def test_factories_set_modes(self):
        assert EngineConfig.jit("irgen").mode == ExecutionMode.JIT
        assert EngineConfig.aot().mode == ExecutionMode.AOT
        assert EngineConfig.naive().mode == ExecutionMode.NAIVE
        assert EngineConfig.jit("lambda", granularity=CompilationGranularity.JOIN
                                ).granularity == CompilationGranularity.JOIN


SOURCE = """
big(1, 2). big(2, 3). big(3, 4). big(4, 5). big(5, 6). big(6, 7).
small(2, 3).
joined(X, Z) :- big(X, Y), small(Y, Z).
closure(X, Y) :- joined(X, Y).
closure(X, Z) :- closure(X, Y), joined(Y, Z).
"""


class TestAOTOptimization:
    def build(self):
        program = parse_program(SOURCE)
        storage = StorageManager(program)
        tree = build_program_ir(program)
        return program, storage, tree

    def test_none_mode_changes_nothing(self):
        _, storage, tree = self.build()
        changed = apply_aot_optimization(
            tree, JoinOrderOptimizer(), storage, AOTSortMode.NONE
        )
        assert changed == 0

    def test_facts_and_rules_uses_cardinalities(self):
        _, storage, tree = self.build()
        changed = apply_aot_optimization(
            tree, JoinOrderOptimizer(), storage, AOTSortMode.FACTS_AND_RULES
        )
        assert changed >= 1
        joined_plans = [
            node.plan for node in find_nodes(tree, JoinProjectOp)
            if node.plan.rule_name.startswith("joined")
        ]
        for plan in joined_plans:
            first = plan.sources[0].literal
            assert first.relation == "small"

    def test_rules_only_mode_requires_no_storage(self):
        _, _, tree = self.build()
        changed = apply_aot_optimization(
            tree, JoinOrderOptimizer(), None, AOTSortMode.RULES_ONLY
        )
        assert changed >= 0

    def test_facts_mode_without_storage_rejected(self):
        _, _, tree = self.build()
        with pytest.raises(ValueError):
            apply_aot_optimization(
                tree, JoinOrderOptimizer(), None, AOTSortMode.FACTS_AND_RULES
            )

    def test_profile_records_aot_stage(self):
        _, storage, tree = self.build()
        profile = RuntimeProfile()
        apply_aot_optimization(
            tree, JoinOrderOptimizer(), storage, AOTSortMode.FACTS_AND_RULES,
            profile=profile,
        )
        assert profile.reorders
        assert all(record.stage == "aot" for record in profile.reorders)

    def test_aot_preserves_results(self):
        from repro.engine.engine import ExecutionEngine

        program = parse_program(SOURCE)
        reference = ExecutionEngine(program.copy(), EngineConfig.interpreted()).run()
        for sort in (AOTSortMode.RULES_ONLY, AOTSortMode.FACTS_AND_RULES):
            result = ExecutionEngine(
                program.copy(), EngineConfig.aot(sort=sort)
            ).run()
            assert result == reference

"""Integration-style unit tests for the IR executor across execution modes."""

import pytest

from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
)
from repro.datalog.parser import parse_program
from repro.engine.engine import ExecutionEngine

TC_SOURCE = """
edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(2, 5).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

NEGATION_SOURCE = """
node(1). node(2). node(3). node(4).
edge(1, 2). edge(2, 3).
reach(1).
reach(Y) :- reach(X), edge(X, Y).
unreached(X) :- node(X), !reach(X).
"""

AGGREGATE_SOURCE = """
sales(east, 10). sales(east, 20). sales(west, 5).
total(R, sum(V)) :- sales(R, V).
volume(R, count(V)) :- sales(R, V).
"""


def run(source: str, config: EngineConfig):
    return ExecutionEngine(parse_program(source), config).evaluate()


REFERENCE_TC = run(TC_SOURCE, EngineConfig.naive())["path"]

ALL_CONFIGS = [
    EngineConfig.interpreted(),
    EngineConfig.interpreted(use_indexes=False),
    EngineConfig.naive(),
    EngineConfig.jit("irgen"),
    EngineConfig.jit("lambda"),
    EngineConfig.jit("quotes"),
    EngineConfig.jit("bytecode"),
    EngineConfig.jit("lambda", granularity=CompilationGranularity.JOIN),
    EngineConfig.jit("lambda", granularity=CompilationGranularity.RELATION),
    EngineConfig.jit("quotes", asynchronous=True),
    EngineConfig.jit("bytecode", asynchronous=True),
    EngineConfig.jit("quotes", compile_mode="snippet"),
    EngineConfig.aot(sort=AOTSortMode.RULES_ONLY),
    EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES),
    EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES, online=True),
    EngineConfig(mode=ExecutionMode.JIT, backend="lambda", evaluator_style="pull"),
]


class TestTransitiveClosureAcrossConfigs:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.describe())
    def test_same_fixpoint(self, config):
        assert run(TC_SOURCE, config)["path"] == REFERENCE_TC


class TestStratifiedNegation:
    @pytest.mark.parametrize(
        "config",
        [EngineConfig.interpreted(), EngineConfig.jit("lambda"), EngineConfig.jit("quotes")],
        ids=lambda c: c.describe(),
    )
    def test_unreached_nodes(self, config):
        results = run(NEGATION_SOURCE, config)
        assert results["reach"] == {(1,), (2,), (3,)}
        assert results["unreached"] == {(4,)}


class TestAggregation:
    @pytest.mark.parametrize(
        "config",
        [EngineConfig.interpreted(), EngineConfig.jit("lambda")],
        ids=lambda c: c.describe(),
    )
    def test_sum_and_count(self, config):
        results = run(AGGREGATE_SOURCE, config)
        assert results["total"] == {("east", 30), ("west", 5)}
        assert results["volume"] == {("east", 2), ("west", 1)}


class TestProfileBookkeeping:
    def test_interpreted_profile_has_no_compilations(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        engine.evaluate()
        summary = engine.profile.summary()
        assert summary["compilations"] == 0
        assert summary["reorders"] == 0
        assert summary["iterations"] >= 2
        assert summary["subqueries_interpreted"] > 0

    def test_jit_profile_records_reorders_and_compiles(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.jit("quotes"))
        engine.evaluate()
        summary = engine.profile.summary()
        assert summary["reorders"] > 0
        assert summary["compilations"] >= 1
        assert summary["compile_seconds"] > 0
        assert summary["subqueries_compiled"] > 0

    def test_aot_profile_records_aot_reorders(self):
        engine = ExecutionEngine(
            parse_program(TC_SOURCE), EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES)
        )
        engine.evaluate()
        stages = {record.stage for record in engine.profile.reorders}
        assert "aot" in stages

    def test_iteration_records_have_delta_cardinalities(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        engine.evaluate()
        assert any(
            record.delta_cardinalities.get("path", 0) > 0
            for record in engine.profile.iterations
        )

    def test_evaluate_is_idempotent_but_legacy_run_cannot_rerun(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        first = engine.evaluate()
        second = engine.evaluate()  # no re-execution: fresh view of same state
        assert first == second
        with pytest.warns(DeprecationWarning):
            with pytest.raises(RuntimeError):
                engine.run()

    def test_max_iterations_bounds_execution(self):
        config = EngineConfig.interpreted().with_(max_iterations=1)
        engine = ExecutionEngine(parse_program(TC_SOURCE), config)
        results = engine.evaluate()
        assert results["path"] < REFERENCE_TC

    def test_explain_shows_plan(self):
        engine = ExecutionEngine(parse_program(TC_SOURCE), EngineConfig.interpreted())
        assert "DoWhile" in engine.explain()


class TestFreshnessThresholdBehaviour:
    def test_low_threshold_recompiles_more(self):
        source = TC_SOURCE
        eager = ExecutionEngine(
            parse_program(source),
            EngineConfig.jit("lambda").with_(freshness_threshold=0.0),
        )
        eager.evaluate()
        lazy = ExecutionEngine(
            parse_program(source),
            EngineConfig.jit("lambda").with_(freshness_threshold=1e9),
        )
        lazy.evaluate()
        assert len(eager.profile.compile_events) >= len(lazy.profile.compile_events)

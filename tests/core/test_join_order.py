"""Unit tests for the runtime join-order optimizer (paper §IV)."""

import pytest

from repro.core.join_order import (
    JoinOrderOptimizer,
    no_index_view,
    storage_cardinality_view,
    storage_index_view,
    zero_cardinality_view,
)
from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.ir.planning import build_join_plan
from repro.relational.operators import AtomSource
from repro.relational.storage import DatabaseKind, StorageManager

v0, v1, v2, v3 = (Variable(f"v{i}") for i in range(4))
x, y, z = Variable("x"), Variable("y"), Variable("z")


def cardinality_view(cards):
    def view(relation, kind):
        if kind == DatabaseKind.DELTA_KNOWN:
            return cards.get(("delta", relation), 0)
        return cards.get(relation, 0)
    return view


class TestOrdering:
    def test_small_relation_goes_first(self):
        rule = Rule(
            Atom("r", (x, z)),
            (Atom("big", (x, y)), Atom("small", (y, z))),
        )
        plan = build_join_plan(rule)
        optimizer = JoinOrderOptimizer()
        cards = cardinality_view({"big": 100_000, "small": 10})
        optimized, decision = optimizer.optimize_plan(plan, cards)
        first = optimized.sources[0].literal
        assert first.relation == "small"
        assert decision.changed

    def test_cartesian_product_avoided(self):
        # VAlias rule 5 from the paper: VaFlow(v0,v2), VaFlow(v3,v1), MAlias(v3,v0)
        rule = Rule(
            Atom("VAlias", (v1, v2)),
            (
                Atom("VaFlow", (v0, v2)),
                Atom("VaFlow", (v3, v1)),
                Atom("MAlias", (v3, v0)),
            ),
        )
        plan = build_join_plan(rule)
        cards = cardinality_view({"VaFlow": 1000, "MAlias": 900})
        optimized, _ = JoinOrderOptimizer().optimize_plan(plan, cards)
        # Every atom after the first must share at least one variable with the
        # atoms before it — i.e. no Cartesian product anywhere in the order.
        bound = set(optimized.sources[0].literal.variables())
        for source in optimized.sources[1:]:
            assert source.literal.variables() & bound
            bound |= source.literal.variables()

    def test_empty_delta_goes_first(self):
        # The paper's iteration-7 example: the delta relation is empty, so
        # putting it first short-circuits the whole sub-query.
        rule = Rule(
            Atom("VAlias", (v1, v2)),
            (
                Atom("VaFlow", (v0, v2)),
                Atom("VaFlow", (v3, v1)),
                Atom("MAlias", (v3, v0)),
            ),
        )
        plan = build_join_plan(rule, delta_index=0)
        cards = cardinality_view({
            "VaFlow": 1_362_950, "MAlias": 79_514_436, ("delta", "VaFlow"): 0,
        })
        optimized, _ = JoinOrderOptimizer().optimize_plan(plan, cards)
        assert optimized.sources[0].kind == DatabaseKind.DELTA_KNOWN

    def test_iteration_one_example_prefers_selective_join(self):
        # Iteration 1 of the paper's example: joining the two VaFlow copies
        # first is a Cartesian product of ~5e5 x 9e5 rows; any order that
        # starts with MAlias ⋈ VaFlow stays linear.
        rule = Rule(
            Atom("VAlias", (v1, v2)),
            (
                Atom("VaFlow", (v0, v2)),
                Atom("VaFlow", (v3, v1)),
                Atom("MAlias", (v3, v0)),
            ),
        )
        plan = build_join_plan(rule, delta_index=0)
        cards = cardinality_view({
            "VaFlow": 903_752, "MAlias": 541_096, ("delta", "VaFlow"): 541_096,
        })
        optimized, _ = JoinOrderOptimizer().optimize_plan(plan, cards)
        relations = [s.literal.relation for s in optimized.sources]
        assert relations[0] != relations[1] or relations[1] == "MAlias"
        # No neighbouring pair may be the two VaFlow atoms (that would be the
        # Cartesian product the optimization exists to avoid).
        assert not (relations[0] == "VaFlow" and relations[1] == "VaFlow")

    def test_single_atom_plan_unchanged(self):
        rule = Rule(Atom("p", (x, y)), (Atom("q", (x, y)),))
        plan = build_join_plan(rule)
        optimized, decision = JoinOrderOptimizer().optimize_plan(
            plan, zero_cardinality_view
        )
        assert optimized is plan
        assert not decision.changed

    def test_assignment_aware_ordering(self):
        # composite(x) :- num(x), num(z), num(y), y <= z, x := y*z, x <= 100.
        # The membership atom num(x) must come last, after the assignment has
        # bound x, turning the scan into a probe.
        rule = Rule(
            Atom("composite", (x,)),
            (
                Atom("num", (x,)),
                Atom("num", (z,)),
                Atom("num", (y,)),
                Comparison("<=", y, z),
                Assignment(x, y * z),
                Comparison("<=", x, Constant(100)),
            ),
        )
        plan = build_join_plan(rule)
        cards = cardinality_view({"num": 100})
        optimized, _ = JoinOrderOptimizer().optimize_plan(plan, cards)
        positive = [
            s.literal for s in optimized.sources
            if isinstance(s.literal, Atom) and not s.literal.negated
        ]
        assert positive[-1].terms == (x,)

    def test_long_rule_uses_greedy_path(self):
        atoms = tuple(
            Atom(f"r{i}", (Variable(f"a{i}"), Variable(f"a{i + 1}"))) for i in range(8)
        )
        rule = Rule(Atom("p", (Variable("a0"), Variable("a8"))), atoms)
        plan = build_join_plan(rule)
        cards = cardinality_view({f"r{i}": 10 * (i + 1) for i in range(8)})
        optimizer = JoinOrderOptimizer(exhaustive_limit=4)
        optimized, decision = optimizer.optimize_plan(plan, cards)
        assert len(optimized.sources) == len(plan.sources)
        assert decision.estimated_cost > 0

    def test_index_availability_affects_choice(self):
        rule = Rule(
            Atom("r", (x, z)),
            (Atom("a", (x, y)), Atom("b", (y, z)), Atom("c", (y, z))),
        )
        plan = build_join_plan(rule)
        cards = cardinality_view({"a": 100, "b": 100, "c": 100})

        def b_indexed(relation, column):
            return relation == "b" and column == 0

        optimized, _ = JoinOrderOptimizer().optimize_plan(plan, cards, b_indexed)
        without_index, _ = JoinOrderOptimizer().optimize_plan(plan, cards, no_index_view)
        relations = [s.literal.relation for s in optimized.sources]
        # The indexed relation is kept off the leading (scanned) position so
        # its index can serve the probe side of the join.
        assert relations[0] != "b"
        # And the index made that plan look cheaper than the index-less one.
        _, with_cost = JoinOrderOptimizer().optimize_plan(plan, cards, b_indexed)
        _, without_cost = JoinOrderOptimizer().optimize_plan(plan, cards, no_index_view)
        assert with_cost.estimated_cost <= without_cost.estimated_cost


class TestViews:
    def test_storage_views(self):
        storage = StorageManager()
        storage.declare("edge", 2)
        storage.insert_derived("edge", (1, 2))
        storage.register_index("edge", 1)
        cards = storage_cardinality_view(storage)
        indexes = storage_index_view(storage)
        assert cards("edge", DatabaseKind.DERIVED) == 1
        assert cards("edge", DatabaseKind.DELTA_KNOWN) == 0
        assert indexes("edge", 1) and not indexes("edge", 0)

    def test_zero_and_no_index_views(self):
        assert zero_cardinality_view("anything", DatabaseKind.DERIVED) == 0
        assert no_index_view("anything", 0) is False

    def test_optimize_with_storage_helper(self):
        storage = StorageManager()
        storage.declare("big", 2)
        storage.declare("small", 2)
        for i in range(50):
            storage.insert_derived("big", (i, i + 1))
        storage.insert_derived("small", (1, 2))
        rule = Rule(Atom("r", (x, z)), (Atom("big", (x, y)), Atom("small", (y, z))))
        plan = build_join_plan(rule)
        optimized = JoinOrderOptimizer().optimize_with_storage(plan, storage)
        assert optimized.sources[0].literal.relation == "small"


class TestDecisionRecord:
    def test_decision_reports_orders(self):
        rule = Rule(
            Atom("r", (x, z)),
            (Atom("big", (x, y)), Atom("small", (y, z))),
        )
        plan = build_join_plan(rule)
        cards = cardinality_view({"big": 1000, "small": 1})
        _, decision = JoinOrderOptimizer().optimize_plan(plan, cards)
        assert decision.original_order == ("big", "small")
        assert decision.chosen_order == ("small", "big")
        assert decision.changed


class TestBlockStrategyAnnotation:
    def test_annotates_scan_then_probe(self):
        from repro.core.join_order import annotate_block_strategies

        rule = Rule(
            Atom("path", (x, z)),
            (Atom("path", (x, y)), Atom("edge", (y, z))),
        )
        plan = build_join_plan(rule)
        cards = cardinality_view({"path": 50, "edge": 1000})
        indexed = annotate_block_strategies(
            plan, cards, lambda relation, column: relation == "edge" and column == 0
        )
        assert indexed == ("scan", "index")
        unindexed = annotate_block_strategies(plan, cards, no_index_view)
        assert unindexed == ("scan", "build")

    def test_assignments_bind_and_negation_is_skipped(self):
        from repro.core.join_order import annotate_block_strategies

        rule = Rule(
            Atom("r", (x, z)),
            (
                Atom("num", (x,)),
                Assignment(z, x + 1),
                Atom("num", (z,)),
                Atom("forbidden", (x, z), negated=True),
            ),
        )
        plan = build_join_plan(rule)
        cards = cardinality_view({"num": 100})
        strategies = annotate_block_strategies(
            plan, cards, lambda relation, column: True
        )
        # Second num atom joins on the assigned z: single indexed key.
        assert strategies == ("scan", "index")

"""Unit tests for the embedded DSL."""

import pytest

from repro import Program
from repro.datalog.literals import Assignment, Comparison
from repro.datalog.terms import Variable


class TestProgramDeclaration:
    def test_relation_reuse_returns_same_handle(self):
        program = Program()
        first = program.relation("edge", 2)
        second = program.relation("edge")
        assert first is second

    def test_relations_bulk_declaration(self):
        program = Program()
        a, b = program.relations("a", "b", arity=1)
        assert a.name == "a" and b.name == "b"

    def test_variable_generation(self):
        program = Program()
        named = program.variable("x")
        assert named == Variable("x")
        fresh1, fresh2 = program.variable(), program.variable()
        assert fresh1 != fresh2

    def test_arity_inferred_on_first_call(self):
        program = Program()
        edge = program.relation("edge")
        edge(1, 2)
        assert edge.arity == 2
        with pytest.raises(ValueError):
            edge(1, 2, 3)


class TestRuleRegistration:
    def test_le_operator_registers_rule(self):
        program = Program()
        edge, path = program.relations("edge", "path", arity=2)
        x, y, z = program.variables("x", "y", "z")
        path(x, y) <= edge(x, y)
        path(x, z) <= path(x, y) & edge(y, z)
        assert len(program.datalog.rules) == 2
        assert program.datalog.rules[1].positive_atoms()[0].relation == "path"

    def test_negated_atom_in_body(self):
        program = Program()
        node, blocked, ok = (
            program.relation("node", 1),
            program.relation("blocked", 1),
            program.relation("ok", 1),
        )
        x = program.variable("x")
        ok(x) <= node(x) & ~blocked(x)
        rule = program.datalog.rules[0]
        assert rule.negated_atoms()[0].relation == "blocked"

    def test_builtins_in_body(self):
        program = Program()
        num, double = program.relation("num", 1), program.relation("double", 2)
        x, y = program.variables("x", "y")
        double(x, y) <= num(x) & Assignment(y, x * 2) & Comparison("<", x, 10)
        rule = program.datalog.rules[0]
        assert len(rule.builtins()) == 2

    def test_explicit_rule_registration(self):
        program = Program()
        edge, path = program.relations("edge", "path", arity=2)
        x, y = program.variables("x", "y")
        rule = program.rule(path(x, y), [edge(x, y)], name="base")
        assert rule.name == "base"


class TestFactsAndSolve:
    def test_add_fact_and_add_facts(self):
        program = Program()
        edge = program.relation("edge", 2)
        edge.add_fact(1, 2)
        count = edge.add_facts([(2, 3), (3, 4)])
        assert count == 2
        assert len(program.datalog.facts) == 3

    def test_fact_by_name(self):
        program = Program()
        program.relation("edge", 2)
        program.fact("edge", 5, 6)
        assert program.datalog.facts[0].values == (5, 6)

    def test_solve_returns_requested_relation(self):
        program = Program()
        edge, path = program.relations("edge", "path", arity=2)
        x, y, z = program.variables("x", "y", "z")
        path(x, y) <= edge(x, y)
        path(x, z) <= path(x, y) & edge(y, z)
        edge.add_facts([(1, 2), (2, 3)])
        result = program.database().query("path")
        assert result == {(1, 2), (2, 3), (1, 3)}

    def test_query_returns_all_idb_without_argument(self):
        program = Program()
        edge, path = program.relations("edge", "path", arity=2)
        x, y = program.variables("x", "y")
        path(x, y) <= edge(x, y)
        edge.add_fact(1, 2)
        result = program.database().query()
        assert set(result.keys()) == {"path"}

    def test_engine_accessor_builds_unrun_engine(self):
        program = Program()
        edge, path = program.relations("edge", "path", arity=2)
        x, y = program.variables("x", "y")
        path(x, y) <= edge(x, y)
        edge.add_fact(1, 2)
        engine = program.engine()
        assert engine.relation("path") == set()
        engine.evaluate()
        assert engine.relation("path") == {(1, 2)}

"""Unit tests for atoms, comparisons, assignments and conjunction building."""

import pytest

from repro.datalog.literals import (
    Assignment,
    Atom,
    Comparison,
    Conjunction,
    compare,
    let,
)
from repro.datalog.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestAtom:
    def test_terms_are_coerced_to_terms(self):
        atom = Atom("edge", (1, x))
        assert atom.terms[0] == Constant(1)
        assert atom.terms[1] is x

    def test_arity(self):
        assert Atom("r", (x, y, z)).arity == 3

    def test_variables(self):
        assert Atom("r", (x, 1, y)).variables() == frozenset({x, y})

    def test_constant_positions(self):
        assert Atom("r", (x, 1, "a")).constant_positions() == (1, 2)

    def test_variable_positions_with_repeats(self):
        positions = Atom("r", (x, y, x)).variable_positions()
        assert positions[x] == [0, 2]
        assert positions[y] == [1]

    def test_negation_via_invert(self):
        atom = Atom("r", (x,))
        negated = ~atom
        assert negated.negated
        assert (~negated).negated is False

    def test_is_relational(self):
        assert Atom("r", (x,)).is_relational()

    def test_and_builds_conjunction(self):
        conjunction = Atom("a", (x,)) & Atom("b", (y,))
        assert isinstance(conjunction, Conjunction)
        assert len(conjunction) == 2


class TestComparison:
    def test_evaluate_all_operators(self):
        bindings = {x: 3, y: 5}
        assert Comparison("<", x, y).evaluate(bindings)
        assert Comparison("<=", x, Constant(3)).evaluate(bindings)
        assert Comparison(">", y, x).evaluate(bindings)
        assert Comparison(">=", y, y).evaluate(bindings)
        assert Comparison("==", x, Constant(3)).evaluate(bindings)
        assert Comparison("!=", x, y).evaluate(bindings)

    def test_expression_sides(self):
        comparison = Comparison("==", x + 1, y)
        assert comparison.evaluate({x: 4, y: 5})
        assert not comparison.evaluate({x: 4, y: 6})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("~=", x, y)

    def test_compare_helper(self):
        assert compare("<", x, 10).evaluate({x: 3})

    def test_not_relational(self):
        assert not Comparison("<", x, y).is_relational()


class TestAssignment:
    def test_evaluate(self):
        assignment = Assignment(z, x + y)
        assert assignment.evaluate({x: 2, y: 3}) == 5

    def test_input_variables_exclude_target(self):
        assignment = Assignment(z, x + y)
        assert assignment.input_variables() == frozenset({x, y})
        assert z in assignment.variables()

    def test_let_helper_wraps_constants(self):
        assignment = let(z, 5)
        assert assignment.evaluate({}) == 5


class TestConjunction:
    def test_coerce_single_literal(self):
        conjunction = Conjunction.coerce(Atom("a", (x,)))
        assert len(conjunction) == 1

    def test_coerce_list(self):
        conjunction = Conjunction.coerce([Atom("a", (x,)), compare("<", x, 3)])
        assert len(conjunction) == 2

    def test_chained_and_preserves_order(self):
        conjunction = Atom("a", (x,)) & Atom("b", (y,)) & compare("<", x, y)
        names = [getattr(l, "relation", "builtin") for l in conjunction]
        assert names == ["a", "b", "builtin"]

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            Conjunction.coerce(42)

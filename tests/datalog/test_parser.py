"""Unit tests for the textual Datalog parser."""

import pytest

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.parser import ParseError, parse_program
from repro.datalog.terms import Aggregate, Constant, Variable


class TestFacts:
    def test_integer_facts(self):
        program = parse_program("edge(1, 2). edge(2, 3).")
        assert len(program.facts) == 2
        assert program.facts[0].values == (1, 2)

    def test_string_and_symbol_constants(self):
        program = parse_program('name(alice, "Alice Smith").')
        assert program.facts[0].values == ("alice", "Alice Smith")

    def test_float_constants(self):
        program = parse_program("weight(a, 1.5).")
        assert program.facts[0].values == ("a", 1.5)

    def test_negative_constant_via_expression(self):
        program = parse_program("delta(0 - 3).")
        assert program.facts[0].values == (-3,)

    def test_nonground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_program("edge(X, 2).")


class TestRules:
    def test_simple_rule(self):
        program = parse_program("path(X, Y) :- edge(X, Y).")
        rule = program.rules[0]
        assert rule.head.relation == "path"
        assert rule.body[0].relation == "edge"
        assert rule.head.terms == (Variable("X"), Variable("Y"))

    def test_recursive_rule_with_multiple_atoms(self):
        program = parse_program("path(X, Z) :- path(X, Y), edge(Y, Z).")
        assert len(program.rules[0].body) == 2

    def test_negation(self):
        program = parse_program("alone(X) :- node(X), !linked(X).")
        negated = program.rules[0].negated_atoms()
        assert len(negated) == 1 and negated[0].relation == "linked"

    def test_negation_tilde_syntax(self):
        program = parse_program("alone(X) :- node(X), ~linked(X).")
        assert len(program.rules[0].negated_atoms()) == 1

    def test_comparison_literal(self):
        program = parse_program("small(X) :- num(X), X < 10.")
        builtin = program.rules[0].builtins()[0]
        assert isinstance(builtin, Comparison)
        assert builtin.op == "<"

    def test_assignment_literal(self):
        program = parse_program("next(X, Y) :- num(X), Y = X + 1.")
        builtin = program.rules[0].builtins()[0]
        assert isinstance(builtin, Assignment)
        assert builtin.target == Variable("Y")

    def test_assignment_with_walrus_style(self):
        program = parse_program("next(X, Y) :- num(X), Y := X * 2.")
        assert isinstance(program.rules[0].builtins()[0], Assignment)

    def test_equality_between_expressions_is_comparison(self):
        program = parse_program("eq(X, Y) :- num(X), num(Y), X + 1 == Y.")
        builtin = program.rules[0].builtins()[0]
        assert isinstance(builtin, Comparison)

    def test_aggregation_in_head(self):
        program = parse_program("total(K, sum(V)) :- sales(K, V).")
        head_terms = program.rules[0].head.terms
        assert isinstance(head_terms[1], Aggregate)
        assert head_terms[1].func == "sum"

    def test_operator_precedence(self):
        program = parse_program("r(X, Y) :- num(X), Y = X + 2 * 3.")
        assignment = program.rules[0].builtins()[0]
        assert assignment.evaluate({Variable("X"): 1}) == 7

    def test_parenthesised_expression(self):
        program = parse_program("r(X, Y) :- num(X), Y = (X + 2) * 3.")
        assignment = program.rules[0].builtins()[0]
        assert assignment.evaluate({Variable("X"): 1}) == 9


class TestDeclarationsAndComments:
    def test_decl_sets_arity(self):
        program = parse_program(".decl edge(2)\nedge(1, 2).")
        assert program.relations["edge"].arity == 2

    def test_comments_are_ignored(self):
        program = parse_program(
            "% a comment\n// another\nedge(1, 2). % trailing\n"
        )
        assert len(program.facts) == 1

    def test_uppercase_is_variable_lowercase_is_constant(self):
        program = parse_program("likes(X, bob) :- person(X).")
        head = program.rules[0].head
        assert head.terms[0] == Variable("X")
        assert head.terms[1] == Constant("bob")


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("edge(1, 2)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("edge(1, 2) @.")

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as info:
            parse_program("edge(1, 2).\nbroken(")
        assert info.value.line == 2

    def test_missing_operator_in_builtin(self):
        with pytest.raises(ParseError):
            parse_program("r(X) :- num(X), X.")


class TestEndToEnd:
    def test_parsed_program_evaluates(self):
        from repro import EngineConfig, ExecutionEngine

        source = """
        edge(1, 2). edge(2, 3). edge(3, 4).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
        program = parse_program(source)
        results = ExecutionEngine(program, EngineConfig.interpreted()).evaluate()
        assert (1, 4) in results["path"]
        assert len(results["path"]) == 6

"""Unit tests for source-level rewrites (alias elimination, body reordering)."""

import pytest

from repro.datalog.literals import Atom, Comparison
from repro.datalog.program import DatalogProgram
from repro.datalog.rewrite import eliminate_aliases, reorder_rule_body, reverse_rule_bodies
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestAliasElimination:
    def build_program_with_alias(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("link", (x, y)), [Atom("edge", (x, y))])          # alias
        program.add_rule(Atom("path", (x, y)), [Atom("link", (x, y))])          # uses alias
        program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("link", (y, z))])
        return program

    def test_alias_removed_and_uses_rewritten(self):
        rewritten = eliminate_aliases(self.build_program_with_alias())
        assert "link" not in {rule.head_relation for rule in rewritten.rules}
        used = {atom.relation for rule in rewritten.rules for atom in rule.body_atoms()}
        assert "link" not in used
        assert rewritten.alias_map == {"link": "edge"}

    def test_non_alias_rules_untouched(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
        rewritten = eliminate_aliases(program)
        assert len(rewritten.rules) == 2
        assert rewritten.alias_map == {}

    def test_relation_with_two_rules_is_not_an_alias(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_fact("extra", (3, 4))
        program.add_rule(Atom("link", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(Atom("link", (x, y)), [Atom("extra", (x, y))])
        rewritten = eliminate_aliases(program)
        assert len(rewritten.rules_for("link")) == 2

    def test_permuted_variables_not_an_alias(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("reverse", (y, x)), [Atom("edge", (x, y))])
        rewritten = eliminate_aliases(program)
        assert len(rewritten.rules_for("reverse")) == 1

    def test_alias_semantics_preserved_under_evaluation(self):
        from repro import EngineConfig, ExecutionEngine

        program = self.build_program_with_alias()
        original = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()["path"]
        rewritten = eliminate_aliases(program)
        result = ExecutionEngine(rewritten, EngineConfig.interpreted()).evaluate()["path"]
        assert result == original


class TestBodyReordering:
    def test_reorder_rule_body(self):
        rule = Rule(
            Atom("p", (x, z)),
            (Atom("a", (x, y)), Atom("b", (y, z)), Comparison("!=", x, z)),
        )
        reordered = reorder_rule_body(rule, [1, 0])
        atoms = [l.relation for l in reordered.body_atoms()]
        assert atoms == ["b", "a"]
        assert len(reordered.builtins()) == 1

    def test_invalid_permutation_rejected(self):
        rule = Rule(Atom("p", (x,)), (Atom("a", (x,)), Atom("b", (x,))))
        with pytest.raises(ValueError):
            reorder_rule_body(rule, [0, 0])

    def test_reverse_rule_bodies_preserves_results(self):
        from repro import EngineConfig, ExecutionEngine

        program = DatalogProgram()
        program.add_facts("edge", [(1, 2), (2, 3), (3, 4)])
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
        reversed_program = reverse_rule_bodies(program)
        original = ExecutionEngine(program, EngineConfig.interpreted()).evaluate()["path"]
        mirrored = ExecutionEngine(reversed_program, EngineConfig.interpreted()).evaluate()["path"]
        assert original == mirrored
        step_rule = reversed_program.rules_for("path")[1]
        assert [a.relation for a in step_rule.body_atoms()] == ["edge", "path"]

"""Unit tests for rules, facts and the program container."""

import pytest

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Fact, Rule
from repro.datalog.terms import Aggregate, Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestFact:
    def test_arity_and_values(self):
        fact = Fact("edge", (1, 2))
        assert fact.arity == 2
        assert fact.values == (1, 2)

    def test_as_atom_is_ground(self):
        atom = Fact("edge", (1, 2)).as_atom()
        assert atom.terms == (Constant(1), Constant(2))


class TestRule:
    def make_rule(self):
        head = Atom("path", (x, z))
        body = (Atom("path", (x, y)), Atom("edge", (y, z)), Comparison("!=", x, z))
        return Rule(head, body, "tc")

    def test_body_classification(self):
        rule = self.make_rule()
        assert len(rule.body_atoms()) == 2
        assert len(rule.positive_atoms()) == 2
        assert rule.negated_atoms() == ()
        assert len(rule.builtins()) == 1

    def test_negated_head_rejected(self):
        with pytest.raises(ValueError):
            Rule(Atom("p", (x,), negated=True), (Atom("q", (x,)),))

    def test_head_and_body_variables(self):
        rule = self.make_rule()
        assert rule.head_variables() == frozenset({x, z})
        assert rule.body_variables() == frozenset({x, y, z})

    def test_is_recursive_with(self):
        rule = self.make_rule()
        assert rule.is_recursive_with(["path"])
        assert not rule.is_recursive_with(["other"])

    def test_with_body_reorders(self):
        rule = self.make_rule()
        reordered = rule.with_body(tuple(reversed(rule.body)))
        assert reordered.body[0] == rule.body[-1]
        assert reordered.head == rule.head

    def test_aggregation_detection(self):
        aggregate_rule = Rule(
            Atom("total", (x, Aggregate("sum", y))), (Atom("sales", (x, y)),)
        )
        assert aggregate_rule.has_aggregation()
        assert aggregate_rule.aggregate_terms()[0][0] == 1
        assert not self.make_rule().has_aggregation()


class TestDatalogProgram:
    def build(self):
        program = DatalogProgram("tc")
        program.add_fact("edge", (1, 2))
        program.add_fact("edge", (2, 3))
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
        return program

    def test_relation_classification(self):
        program = self.build()
        assert program.edb_relations() == ["edge"]
        assert program.idb_relations() == ["path"]

    def test_rules_for(self):
        program = self.build()
        assert len(program.rules_for("path")) == 2
        assert program.rules_for("edge") == []

    def test_facts_for_and_arity(self):
        program = self.build()
        assert len(program.facts_for("edge")) == 2
        assert program.arity_of("edge") == 2
        with pytest.raises(KeyError):
            program.arity_of("unknown")

    def test_arity_mismatch_rejected(self):
        program = self.build()
        with pytest.raises(ValueError):
            program.add_fact("edge", (1, 2, 3))

    def test_validate_arities_catches_bad_atom(self):
        program = self.build()
        program.rules.append(Rule(Atom("path", (x,)), (Atom("edge", (x, y)),)))
        with pytest.raises(ValueError):
            program.validate_arities()

    def test_copy_is_independent(self):
        program = self.build()
        clone = program.copy()
        clone.add_fact("edge", (3, 4))
        assert len(program.facts) == 2
        assert len(clone.facts) == 3

    def test_with_rules_preserves_facts(self):
        program = self.build()
        single = program.with_rules(program.rules[:1])
        assert len(single.rules) == 1
        assert len(single.facts) == 2

    def test_rule_names_unique_by_default(self):
        program = self.build()
        names = [rule.name for rule in program.rules]
        assert len(names) == len(set(names))

    def test_bulk_add_facts(self):
        program = DatalogProgram()
        count = program.add_facts("r", [(1,), (2,), (3,)])
        assert count == 3
        assert program.relations["r"].fact_count == 3

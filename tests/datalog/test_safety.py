"""Unit tests for rule-safety checking."""

import pytest

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Rule
from repro.datalog.safety import SafetyError, check_program_safety, check_rule_safety
from repro.datalog.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestRuleSafety:
    def test_safe_rule_passes(self):
        rule = Rule(Atom("p", (x, y)), (Atom("q", (x, y)),))
        check_rule_safety(rule)

    def test_unbound_head_variable(self):
        rule = Rule(Atom("p", (x, z)), (Atom("q", (x, y)),))
        with pytest.raises(SafetyError):
            check_rule_safety(rule)

    def test_head_variable_bound_by_assignment(self):
        rule = Rule(Atom("p", (x, z)), (Atom("q", (x, y)), Assignment(z, y + 1)))
        check_rule_safety(rule)

    def test_chained_assignments_bind_transitively(self):
        rule = Rule(
            Atom("p", (z,)),
            (Atom("q", (x,)), Assignment(z, y + 1), Assignment(y, x + 1)),
        )
        check_rule_safety(rule)

    def test_negated_atom_with_unbound_variable(self):
        rule = Rule(Atom("p", (x,)), (Atom("q", (x,)), Atom("r", (y,), negated=True)))
        with pytest.raises(SafetyError):
            check_rule_safety(rule)

    def test_negated_atom_with_bound_variables_ok(self):
        rule = Rule(Atom("p", (x,)), (Atom("q", (x,)), Atom("r", (x,), negated=True)))
        check_rule_safety(rule)

    def test_comparison_with_unbound_variable(self):
        rule = Rule(Atom("p", (x,)), (Atom("q", (x,)), Comparison("<", y, Constant(3))))
        with pytest.raises(SafetyError):
            check_rule_safety(rule)

    def test_assignment_reading_unbound_variable(self):
        rule = Rule(Atom("p", (x, z)), (Atom("q", (x,)), Assignment(z, y + 1)))
        with pytest.raises(SafetyError):
            check_rule_safety(rule)

    def test_rule_with_only_negative_atoms_rejected(self):
        rule = Rule(Atom("p", (x,)), (Atom("q", (x,), negated=True),))
        with pytest.raises(SafetyError):
            check_rule_safety(rule)

    def test_ground_rule_without_positive_atoms_allowed(self):
        rule = Rule(Atom("p", (Constant(1),)), (Comparison("<", Constant(1), Constant(2)),))
        check_rule_safety(rule)


class TestProgramSafety:
    def test_program_with_safe_rules(self):
        program = DatalogProgram()
        program.add_rule(Atom("p", (x, y)), [Atom("q", (x, y))])
        program.add_fact("q", (1, 2))
        assert len(check_program_safety(program)) == 1

    def test_program_with_unsafe_rule(self):
        program = DatalogProgram()
        program.add_rule(Atom("p", (x, z)), [Atom("q", (x, y))])
        with pytest.raises(SafetyError):
            check_program_safety(program)

    def test_program_safety_also_validates_arities(self):
        program = DatalogProgram()
        program.add_rule(Atom("p", (x, y)), [Atom("q", (x, y))])
        program.add_fact("q", (1, 2))
        # Sneak in an arity-violating rule behind the declaration API's back.
        program.rules.append(Rule(Atom("p", (x,)), (Atom("q", (x, y)),)))
        with pytest.raises(ValueError):
            check_program_safety(program)

"""Unit tests for the precedence graph and stratification."""

import pytest

from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.stratification import (
    StratificationError,
    Stratifier,
    precedence_graph,
    stratify,
)
from repro.datalog.terms import Aggregate, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


def transitive_closure_program() -> DatalogProgram:
    program = DatalogProgram("tc")
    program.add_fact("edge", (1, 2))
    program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
    program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
    return program


class TestPrecedenceGraph:
    def test_edges_point_from_body_to_head(self):
        graph = precedence_graph(transitive_closure_program())
        pairs = {(e.source, e.target) for e in graph.edges}
        assert ("edge", "path") in pairs
        assert ("path", "path") in pairs

    def test_negative_edges_marked(self):
        program = DatalogProgram()
        program.add_fact("node", (1,))
        program.add_rule(Atom("bad", (x,)), [Atom("node", (x,)), Atom("good", (x,), negated=True)])
        program.add_rule(Atom("good", (x,)), [Atom("node", (x,))])
        graph = precedence_graph(program)
        negatives = [(e.source, e.target) for e in graph.edges if e.negative]
        assert negatives == [("good", "bad")]

    def test_aggregation_counts_as_negative(self):
        program = DatalogProgram()
        program.add_fact("sales", (1, 5))
        program.add_rule(Atom("total", (x, Aggregate("sum", y))), [Atom("sales", (x, y))])
        graph = precedence_graph(program)
        assert any(e.negative for e in graph.edges)

    def test_successors_and_predecessors(self):
        graph = precedence_graph(transitive_closure_program())
        assert ("path", False) in graph.successors("edge")
        assert ("edge", False) in graph.predecessors("path")


class TestStratification:
    def test_single_recursive_stratum(self):
        strata = stratify(transitive_closure_program())
        assert len(strata) == 1
        assert strata[0].relations == ("path",)
        assert strata[0].is_recursive()

    def test_negation_forces_two_strata(self):
        program = DatalogProgram()
        program.add_fact("node", (1,))
        program.add_rule(Atom("reached", (x,)), [Atom("node", (x,))])
        program.add_rule(
            Atom("unreached", (x,)),
            [Atom("node", (x,)), Atom("reached", (x,), negated=True)],
        )
        strata = stratify(program)
        assert [s.relations for s in strata] == [("reached",), ("unreached",)]

    def test_unstratifiable_program_rejected(self):
        program = DatalogProgram()
        program.add_fact("node", (1,))
        program.add_rule(Atom("p", (x,)), [Atom("node", (x,)), Atom("q", (x,), negated=True)])
        program.add_rule(Atom("q", (x,)), [Atom("node", (x,)), Atom("p", (x,), negated=True)])
        with pytest.raises(StratificationError):
            stratify(program)

    def test_mutual_recursion_same_stratum(self):
        program = DatalogProgram()
        program.add_fact("base", (1, 2))
        program.add_rule(Atom("even_path", (x, y)), [Atom("base", (x, y))])
        program.add_rule(
            Atom("odd_path", (x, z)), [Atom("even_path", (x, y)), Atom("base", (y, z))]
        )
        program.add_rule(
            Atom("even_path", (x, z)), [Atom("odd_path", (x, y)), Atom("base", (y, z))]
        )
        strata = stratify(program)
        assert len(strata) == 1
        assert set(strata[0].relations) == {"even_path", "odd_path"}

    def test_strata_are_topologically_ordered(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
        program.add_rule(
            Atom("unreachable", (x, y)),
            [Atom("edge", (x, x)), Atom("edge", (y, y)), Atom("path", (x, y), negated=True)],
        )
        strata = stratify(program)
        order = {relation: s.index for s in strata for relation in s.relations}
        assert order["path"] < order["unreachable"]

    def test_non_recursive_stratum_reports_no_recursion(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("copy", (x, y)), [Atom("edge", (x, y))])
        strata = stratify(program)
        assert len(strata) == 1
        assert not strata[0].is_recursive()

    def test_cspa_is_single_stratum(self):
        from repro.analyses.cspa import build_cspa_program
        from repro.workloads.program_facts import CSPADataset

        dataset = CSPADataset(assign=[(1, 2)], dereference=[(2, 3)])
        strata = stratify(build_cspa_program(dataset))
        assert len(strata) == 1
        assert set(strata[0].relations) == {"VaFlow", "VAlias", "MAlias"}

"""Unit tests for Datalog terms (variables, constants, expressions, aggregates)."""

import pytest

from repro.datalog.terms import (
    Aggregate,
    BinaryExpression,
    Constant,
    Variable,
    as_term,
    evaluate_aggregate,
)


class TestVariable:
    def test_equality_is_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_variables_returns_self(self):
        assert Variable("x").variables() == frozenset({Variable("x")})

    def test_substitute_bound(self):
        assert Variable("x").substitute({Variable("x"): 7}) == 7

    def test_substitute_unbound_raises(self):
        with pytest.raises(KeyError):
            Variable("x").substitute({})

    def test_arithmetic_sugar_builds_expressions(self):
        x = Variable("x")
        expression = x + 1
        assert isinstance(expression, BinaryExpression)
        assert expression.substitute({x: 4}) == 5

    def test_reverse_arithmetic(self):
        x = Variable("x")
        assert (10 - x).substitute({x: 4}) == 6
        assert (3 * x).substitute({x: 4}) == 12

    def test_mod_and_floordiv(self):
        x = Variable("x")
        assert (x % 3).substitute({x: 10}) == 1
        assert (x // 3).substitute({x: 10}) == 3


class TestConstant:
    def test_no_variables(self):
        assert Constant(3).variables() == frozenset()

    def test_substitute_returns_value(self):
        assert Constant("a").substitute({}) == "a"

    def test_equality(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)


class TestBinaryExpression:
    def test_nested_expression(self):
        x, y = Variable("x"), Variable("y")
        expression = BinaryExpression("+", BinaryExpression("*", x, Constant(2)), y)
        assert expression.substitute({x: 3, y: 4}) == 10

    def test_variables_collects_both_sides(self):
        x, y = Variable("x"), Variable("y")
        expression = BinaryExpression("-", x, y)
        assert expression.variables() == frozenset({x, y})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinaryExpression("**", Constant(2), Constant(3))

    def test_min_max_operators(self):
        x = Variable("x")
        assert BinaryExpression("min", x, Constant(5)).substitute({x: 9}) == 5
        assert BinaryExpression("max", x, Constant(5)).substitute({x: 9}) == 9


class TestAggregate:
    def test_valid_functions(self):
        for func in ("count", "sum", "min", "max", "mean"):
            assert Aggregate(func, Variable("x")).func == func

    def test_invalid_function_rejected(self):
        with pytest.raises(ValueError):
            Aggregate("median", Variable("x"))

    def test_evaluate_aggregate(self):
        values = [3, 1, 2]
        assert evaluate_aggregate("count", values) == 3
        assert evaluate_aggregate("sum", values) == 6
        assert evaluate_aggregate("min", values) == 1
        assert evaluate_aggregate("max", values) == 3
        assert evaluate_aggregate("mean", values) == 2

    def test_evaluate_unknown_aggregate(self):
        with pytest.raises(ValueError):
            evaluate_aggregate("median", [1])


class TestAsTerm:
    def test_wraps_python_values(self):
        assert as_term(5) == Constant(5)
        assert as_term("a") == Constant("a")

    def test_passes_terms_through(self):
        x = Variable("x")
        assert as_term(x) is x

"""Unit tests for checkpoints: packed columns, atomicity, store rotation."""

import os
import pickle
import zlib

import pytest

from repro.durability.checkpoint import (
    MAGIC,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    load_checkpoint,
    write_checkpoint,
)


def sample_checkpoint(**overrides):
    fields = dict(
        program="fingerprint",
        wal_records=3,
        symbols=["alpha", "beta", ("a", "tuple")],
        relations={
            "edge": ({(1, 2), (2, 3)}, {(1, 2), (2, 3)}),
            "path": ({(1, 2), (2, 3), (1, 3)}, set()),
        },
        arities={"edge": 2, "path": 2},
    )
    fields.update(overrides)
    return Checkpoint(**fields)


class TestRoundtrip:
    @pytest.mark.parametrize("use_mmap", [True, False], ids=["mmap", "read"])
    def test_packed_int_rows_roundtrip(self, tmp_path, use_mmap):
        path = str(tmp_path / "checkpoint-000000000003.ckpt")
        original = sample_checkpoint()
        write_checkpoint(path, original)
        loaded = load_checkpoint(path, use_mmap=use_mmap)
        assert loaded.relations == original.relations
        assert loaded.arities == original.arities
        assert loaded.symbols == original.symbols
        assert loaded.wal_records == 3
        assert loaded.row_count() == 5

    def test_non_int_rows_fall_back_to_pickle(self, tmp_path):
        """Identity-codec storage holds arbitrary values; those relations
        checkpoint through the pickle fallback while packable ones in the
        same file still use packed columns."""
        path = str(tmp_path / "checkpoint-000000000001.ckpt")
        original = sample_checkpoint(
            symbols=None,
            relations={
                "edge": ({("a", "b")}, {("a", "b")}),
                "dist": ({(1, 2, 3)}, set()),
            },
            arities={"edge": 2, "dist": 3},
        )
        write_checkpoint(path, original)
        loaded = load_checkpoint(path)
        assert loaded.relations == original.relations
        assert loaded.symbols is None

    def test_huge_ints_overflow_into_the_fallback(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000001.ckpt")
        original = sample_checkpoint(
            relations={"big": ({(1 << 80, 1)}, set())},
            arities={"big": 2}, symbols=None,
        )
        write_checkpoint(path, original)
        assert load_checkpoint(path).relations == original.relations

    def test_empty_relations_roundtrip(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000000.ckpt")
        original = sample_checkpoint(
            relations={"edge": (set(), set())}, arities={"edge": 2},
        )
        write_checkpoint(path, original)
        assert load_checkpoint(path).relations == {"edge": (set(), set())}


class TestValidation:
    def test_bad_magic_is_a_checkpoint_error(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000001.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"not a checkpoint at all............")
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_truncated_packed_section_is_detected(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000003.ckpt")
        write_checkpoint(path, sample_checkpoint())
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 4)
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_bit_rot_in_the_packed_section_fails_the_crc(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000003.ckpt")
        write_checkpoint(path, sample_checkpoint())
        with open(path, "r+b") as handle:
            handle.seek(-3, os.SEEK_END)
            original = handle.read(1)
            handle.seek(-3, os.SEEK_END)
            handle.write(bytes([original[0] ^ 0xFF]))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(path)

    def test_unsupported_format_version_is_refused(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000001.ckpt")
        header = pickle.dumps({"format": 99})
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(len(header).to_bytes(8, "big"))
            handle.write(header)
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_write_is_atomic_no_tmp_file_survives(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000003.ckpt")
        write_checkpoint(path, sample_checkpoint())
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestStore:
    def fill(self, store, generations):
        for wal_records in generations:
            store.write(sample_checkpoint(wal_records=wal_records))

    def test_list_is_newest_first(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=10)
        self.fill(store, [1, 5, 3])
        assert [records for records, _ in store.list()] == [5, 3, 1]

    def test_write_prunes_beyond_keep(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=2)
        self.fill(store, [1, 2, 3, 4])
        assert [records for records, _ in store.list()] == [4, 3]

    def test_latest_falls_back_past_a_corrupt_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=10)
        self.fill(store, [1, 2])
        newest = store.list()[0][1]
        with open(newest, "r+b") as handle:
            handle.seek(-2, os.SEEK_END)
            handle.write(b"\xff\xff")
        survivor = store.latest()
        assert survivor is not None and survivor.wal_records == 1

    def test_latest_of_an_empty_directory_is_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path / "missing")).latest() is None

    def test_prune_removes_tmp_strays(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=2)
        stray = tmp_path / "checkpoint-000000000009.ckpt.tmp"
        stray.write_bytes(b"half-written")
        store.prune()
        assert not stray.exists()

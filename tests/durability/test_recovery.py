"""Recovery refusal paths: every way a durability directory can disagree
with the session opening it must be a loud :class:`RecoveryError`, never a
silently wrong database."""

import os

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.durability import DurabilityConfig, RecoveryError
from repro.durability.checkpoint import load_checkpoint, write_checkpoint

EDGES = [("n1", "n2"), ("n2", "n3"), ("n3", "n4")]


def populate(directory, program=None, config=None, batches=2):
    """Run a durable database and close it cleanly (close checkpoints)."""
    database = Database(
        program if program is not None
        else build_transitive_closure_program(EDGES),
        config, durability=DurabilityConfig(dir=directory),
    )
    with database.connect() as conn:
        for index in range(batches):
            conn.apply(inserts={"edge": [(f"x{index}", f"y{index}")]})
    database.close()


def reopen(directory, program=None, config=None):
    database = Database(
        program if program is not None
        else build_transitive_closure_program(EDGES),
        config, durability=DurabilityConfig(dir=directory),
    )
    return database, database.connect()


class TestRefusals:
    def test_checkpoint_of_a_different_program_is_refused(self, tmp_path):
        directory = str(tmp_path / "dur")
        populate(directory)
        # Same relations, different rules => different fingerprint.
        other = "edge(1, 2).\npath(X, Y) :- edge(X, Y).\n"
        with pytest.raises(RecoveryError, match="different program"):
            reopen(directory, program=other)

    def test_same_rules_different_facts_hit_the_symbol_guard(self, tmp_path):
        """The fingerprint covers the rules; a fact change slips past it
        but diverges the deterministic symbol prefix — the second guard."""
        directory = str(tmp_path / "dur")
        populate(directory)
        other = build_transitive_closure_program([("a", "b"), ("b", "c")])
        with pytest.raises(RecoveryError, match="symbol table divergence"):
            reopen(directory, program=other)

    def test_interning_flip_is_refused(self, tmp_path):
        directory = str(tmp_path / "dur")
        populate(directory)  # default config interns
        with pytest.raises(RecoveryError, match="dictionary encoding"):
            reopen(
                directory,
                config=EngineConfig.interpreted().with_(interning=False),
            )

    def test_doctored_symbol_table_is_refused(self, tmp_path):
        """A checkpoint whose symbol list diverges from the session's
        deterministic prefix would remap every encoded row; recovery must
        reject it rather than decode garbage."""
        directory = str(tmp_path / "dur")
        populate(directory)
        names = [
            entry for entry in os.listdir(directory)
            if entry.endswith(".ckpt")
        ]
        path = os.path.join(directory, sorted(names)[-1])
        checkpoint = load_checkpoint(path)
        assert checkpoint.symbols  # interned workload
        checkpoint.symbols[0] = "not-what-the-program-allocates"
        write_checkpoint(path, checkpoint)
        with pytest.raises(RecoveryError, match="symbol table divergence"):
            reopen(directory)

    def test_missing_checkpoint_with_rotated_wal_is_refused(self, tmp_path):
        """A WAL whose base_seq exceeds the best checkpoint means committed
        records were destroyed (a checkpoint deleted out from under the
        rotated log): refuse rather than resurrect a partial history."""
        directory = str(tmp_path / "dur")
        populate(directory)  # clean close: checkpoint + rotated (empty) WAL
        for entry in os.listdir(directory):
            if entry.endswith(".ckpt"):
                os.remove(os.path.join(directory, entry))
        with pytest.raises(RecoveryError, match="missing"):
            reopen(directory)


class TestCleanPaths:
    def test_clean_close_then_reopen_is_warm_with_no_replay(self, tmp_path):
        directory = str(tmp_path / "dur")
        populate(directory, batches=3)
        database, conn = reopen(directory)
        report = conn.durability.last_recovery
        assert report.warm
        assert report.replayed_records == 0  # close collapsed the WAL
        assert ("x2", "y2") in conn.query("edge")
        database.close()

    def test_fresh_directory_recovers_nothing(self, tmp_path):
        directory = str(tmp_path / "dur")
        database, conn = reopen(directory)
        report = conn.durability.last_recovery
        assert not report.warm and report.replayed_records == 0
        database.close()

    def test_recovered_database_keeps_accepting_mutations(self, tmp_path):
        directory = str(tmp_path / "dur")
        populate(directory)
        database, conn = reopen(directory)
        conn.apply(inserts={"edge": [("n4", "n5")]})
        assert ("n1", "n5") in conn.query("path")
        database.close()
        # ... and those post-recovery mutations are themselves durable.
        database, conn = reopen(directory)
        assert ("n1", "n5") in conn.query("path")
        database.close()

"""Unit tests for the WAL: framing, torn-tail scanning, rotation, fsync."""

import os
import zlib

import pytest

from repro.durability.wal import (
    MAGIC,
    MAX_RECORD,
    WalError,
    WalRecord,
    WriteAheadLog,
    frame_record,
    read_wal,
)

_HEADER_LEN = len(MAGIC) + 8


def record(seq, **kwargs):
    return WalRecord(
        seq=seq,
        inserts=kwargs.get("inserts", {"edge": [(seq, seq + 1)]}),
        retracts=kwargs.get("retracts", {}),
        sym_base=kwargs.get("sym_base", 0),
        sym_entries=kwargs.get("sym_entries", []),
    )


def write_log(path, count, fsync="off"):
    wal = WriteAheadLog(path, fsync=fsync)
    for seq in range(count):
        wal.append(record(seq))
    wal.close()


class TestFraming:
    def test_record_roundtrips_through_its_payload(self):
        original = record(
            7, sym_base=3, sym_entries=["a", ("b", 1)],
            retracts={"edge": [(1, 2)]},
        )
        rebuilt = WalRecord.from_payload(original.payload())
        assert rebuilt == original

    def test_oversized_record_is_refused_at_write_time(self):
        with pytest.raises(WalError, match="MAX_RECORD"):
            frame_record(b"\x00" * (MAX_RECORD + 1))


class TestScan:
    def test_empty_log_scans_clean(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, 0)
        scan = read_wal(path)
        assert scan.records == [] and not scan.torn
        assert scan.valid_length == _HEADER_LEN

    def test_scan_returns_records_in_commit_order(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, 5)
        scan = read_wal(path)
        assert [r.seq for r in scan.records] == [0, 1, 2, 3, 4]
        assert not scan.torn
        assert scan.valid_length == scan.file_length

    def test_foreign_file_is_a_wal_error(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a wal file, sorry")
        with pytest.raises(WalError, match="bad magic"):
            read_wal(path)

    def test_torn_tail_is_truncated_never_read_past(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, 3)
        intact = read_wal(path)
        with open(path, "r+b") as handle:
            handle.truncate(intact.file_length - 5)
        scan = read_wal(path)
        assert scan.torn
        assert [r.seq for r in scan.records] == [0, 1]

    def test_corrupt_middle_record_hides_the_intact_suffix(self, tmp_path):
        """A record after a corrupt one was never acknowledged in commit
        order: replaying it would resurrect a batch the crashed process
        itself would not recover.  The scan must stop at the corruption
        even though bytes after it still parse."""
        path = str(tmp_path / "wal.log")
        write_log(path, 3)
        boundary = _HEADER_LEN
        with open(path, "r+b") as handle:
            data = handle.read()
            first_len = int.from_bytes(
                data[boundary:boundary + 4], "big"
            )
            handle.seek(boundary + 8 + first_len + 10)  # inside record 1
            handle.write(b"\xff")
        scan = read_wal(path)
        assert scan.torn
        assert [r.seq for r in scan.records] == [0]

    def test_valid_crc_but_unpicklable_payload_counts_as_torn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, 1)
        garbage = b"\x00garbage-not-a-pickle"
        frame = (
            len(garbage).to_bytes(4, "big")
            + zlib.crc32(garbage).to_bytes(4, "big")
            + garbage
        )
        with open(path, "ab") as handle:
            handle.write(frame)
        scan = read_wal(path)
        assert scan.torn
        assert len(scan.records) == 1


class TestAppendAndResume:
    def test_resume_truncates_the_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        write_log(path, 3)
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.truncate(size - 3)
        scan = read_wal(path)
        wal = WriteAheadLog.resume(path, scan, fsync="off")
        assert wal.next_seq == 2
        wal.append(record(2))
        wal.close()
        healed = read_wal(path)
        assert not healed.torn
        assert [r.seq for r in healed.records] == [0, 1, 2]

    def test_append_after_close_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync="off")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(record(0))

    def test_batch_policy_counts_unsynced_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), fsync="batch")
        wal.append(record(0))
        wal.append(record(1))
        assert wal.sync() == 2
        assert wal.sync() == 0  # group-commit point drained the backlog
        wal.close()

    def test_always_policy_leaves_nothing_for_sync(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), fsync="always")
        wal.append(record(0))
        assert wal.sync() == 0
        wal.close()


class TestRotation:
    def test_rotate_starts_an_empty_epoch_at_base_seq(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync="off")
        for seq in range(4):
            wal.append(record(seq))
        wal.rotate(4)
        assert wal.record_count == 0 and wal.next_seq == 4
        wal.append(record(4))
        wal.close()
        scan = read_wal(path)
        assert scan.base_seq == 4
        assert [r.seq for r in scan.records] == [4]

    def test_reopen_after_rotation_sees_the_new_epoch(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync="off")
        wal.append(record(0))
        wal.rotate(1)
        wal.close()
        reopened = WriteAheadLog(path, fsync="off")
        assert reopened.base_seq == 1 and reopened.next_seq == 1
        reopened.close()

"""Unit tests for the engine façade and automatic index selection."""

import pytest

from repro.core.config import EngineConfig
from repro.datalog.literals import Atom
from repro.datalog.parser import parse_program
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Constant, Variable
from repro.engine.engine import ExecutionEngine
from repro.engine.indexing import select_indexes

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestIndexSelection:
    def test_join_columns_are_indexed(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(
            Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))]
        )
        indexes = select_indexes(program)
        assert ("path", 1) in indexes   # y in path(x, y)
        assert ("edge", 0) in indexes   # y in edge(y, z)

    def test_constant_columns_are_indexed(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("from_one", (y,)), [Atom("edge", (Constant(1), y))])
        assert ("edge", 0) in select_indexes(program)

    def test_unjoined_columns_are_not_indexed(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("copy", (x, y)), [Atom("edge", (x, y))])
        assert select_indexes(program) == set()

    def test_negated_atoms_participate(self):
        program = DatalogProgram()
        program.add_fact("node", (1,))
        program.add_fact("blocked", (1,))
        program.add_rule(
            Atom("free", (x,)), [Atom("node", (x,)), Atom("blocked", (x,), negated=True)]
        )
        indexes = select_indexes(program)
        assert ("blocked", 0) in indexes and ("node", 0) in indexes

    def test_cspa_index_set_covers_join_keys(self):
        from repro.analyses.cspa import build_cspa_program
        from repro.workloads.program_facts import CSPADataset

        program = build_cspa_program(CSPADataset(assign=[(1, 2)], dereference=[(2, 3)]))
        indexes = select_indexes(program)
        assert ("Assign", 1) in indexes
        assert any(relation == "VaFlow" for relation, _ in indexes)


class TestExecutionEngine:
    SOURCE = """
    edge(1, 2). edge(2, 3).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    """

    def test_evaluate_returns_idb_relations_only(self):
        engine = ExecutionEngine(parse_program(self.SOURCE), EngineConfig.interpreted())
        results = engine.evaluate()
        assert set(results) == {"path"}

    def test_relation_accessor_reads_edb_too(self):
        engine = ExecutionEngine(parse_program(self.SOURCE), EngineConfig.interpreted())
        engine.evaluate()
        assert engine.relation("edge") == {(1, 2), (2, 3)}

    def test_indexes_registered_when_enabled(self):
        engine = ExecutionEngine(parse_program(self.SOURCE), EngineConfig.interpreted())
        assert engine.storage.registered_indexes("edge") != ()
        disabled = ExecutionEngine(
            parse_program(self.SOURCE), EngineConfig.interpreted(use_indexes=False)
        )
        assert disabled.storage.registered_indexes("edge") == ()

    def test_execution_seconds_populated(self):
        engine = ExecutionEngine(parse_program(self.SOURCE), EngineConfig.interpreted())
        engine.evaluate()
        assert engine.execution_seconds() > 0
        assert engine.setup_seconds >= 0

    def test_default_config_is_interpreted(self):
        engine = ExecutionEngine(parse_program(self.SOURCE))
        assert engine.config.mode.value == "interpreted"

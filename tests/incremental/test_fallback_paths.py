"""Fallback coverage: negation/aggregation sessions recompute correctly.

Programs with negation or aggregation cannot take the incremental delta /
DRed paths, so :class:`IncrementalSession` transparently falls back to full
recomputation over the session's base facts.  These tests pin, under BOTH
physical executors (pushdown oracle and vectorized batch):

* the documented fallback is emitted (``incremental_capable`` is False and
  every mutation's report carries ``strategy == "recompute"``),
* the recomputed fixpoint is exactly the from-scratch evaluation of the
  current base facts (``self_check``), and
* both executors agree bit-for-bit on the recomputed state.
"""

import pytest

from repro.analyses.micro import build_primes_program
from repro.core.config import EngineConfig
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Aggregate, Variable
from repro.engine.engine import ExecutionEngine
from repro.incremental import IncrementalSession

EXECUTORS = ("pushdown", "vectorized")


def config_for(executor: str) -> EngineConfig:
    return EngineConfig.interpreted().with_(executor=executor)


def build_degree_program(edges) -> DatalogProgram:
    """Aggregation: out-degree per node (count over the second column)."""
    program = DatalogProgram("degree")
    x, y = Variable("x"), Variable("y")
    program.add_rule(
        Atom("degree", (x, Aggregate("count", y))), [Atom("edge", (x, y))]
    )
    program.add_facts("edge", edges)
    return program


@pytest.mark.parametrize("executor", EXECUTORS)
class TestNegationFallback:
    def test_insert_recomputes_and_reports_fallback(self, executor):
        session = IncrementalSession(build_primes_program(limit=30), config_for(executor))
        assert not session.incremental_capable
        before = set(session.fetch("prime"))
        report = session.insert_facts("num", [(31,), (32,)])
        assert report.strategy == "recompute"
        assert report.inserted == 2
        after = set(session.fetch("prime"))
        assert after != before and (31,) in after
        session.self_check()

    def test_retract_recomputes_and_reports_fallback(self, executor):
        session = IncrementalSession(build_primes_program(limit=30), config_for(executor))
        session.refresh()
        report = session.retract_facts("num", [(30,)])
        assert report.strategy == "recompute"
        assert report.retracted == 1
        assert (30,) not in session.fetch("num")
        session.self_check()

    def test_executors_agree_after_mutations(self, executor):
        """The recomputed state equals the pushdown oracle's, bit-for-bit."""
        session = IncrementalSession(build_primes_program(limit=30), config_for(executor))
        session.insert_facts("num", [(31,), (33,)])
        session.retract_facts("num", [(29,)])
        oracle = ExecutionEngine(
            session.snapshot_program(), config_for("pushdown")
        ).evaluate()
        for relation in ("prime", "composite", "candidate"):
            assert set(session.fetch(relation)) == set(oracle[relation]), relation


@pytest.mark.parametrize("executor", EXECUTORS)
class TestAggregationFallback:
    EDGES = [(1, 2), (1, 3), (2, 3), (3, 1)]

    def test_insert_recomputes_aggregates(self, executor):
        session = IncrementalSession(build_degree_program(self.EDGES), config_for(executor))
        assert not session.incremental_capable
        assert set(session.fetch("degree")) == {(1, 2), (2, 1), (3, 1)}
        report = session.insert_facts("edge", [(2, 4), (4, 1)])
        assert report.strategy == "recompute"
        assert set(session.fetch("degree")) == {(1, 2), (2, 2), (3, 1), (4, 1)}
        session.self_check()

    def test_retract_recomputes_aggregates(self, executor):
        session = IncrementalSession(build_degree_program(self.EDGES), config_for(executor))
        session.refresh()
        report = session.retract_facts("edge", [(1, 3)])
        assert report.strategy == "recompute"
        assert report.retracted == 1
        assert set(session.fetch("degree")) == {(1, 1), (2, 1), (3, 1)}
        session.self_check()

    def test_noop_batch_skips_recompute(self, executor):
        """A batch that changes nothing must not trigger the rebuild."""
        session = IncrementalSession(build_degree_program(self.EDGES), config_for(executor))
        session.refresh()
        generations = dict(session.storage.generations())
        session.retract_facts("edge", [(9, 9)])   # never asserted
        session.insert_facts("edge", [(1, 2)])    # already a base row
        assert session.storage.generations() == generations

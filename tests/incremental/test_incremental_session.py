"""Unit tests for the incremental evaluation subsystem."""

import pytest

from repro.analyses.micro import build_primes_program, build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.datalog.fingerprint import fingerprint_program
from repro.engine.engine import ExecutionEngine
from repro.engine.indexing import rebuild_indexes, verify_indexes
from repro.incremental import IncrementalSession, ResultCache
from repro.incremental.dred import over_delete
from repro.relational.operators import SubqueryEvaluator

EDGES = [(1, 2), (2, 3), (3, 4), (5, 6)]


def tc_session(edges=EDGES, config=None, cache=None):
    return IncrementalSession(
        build_transitive_closure_program(edges), config or EngineConfig.interpreted(),
        cache=cache,
    )


class TestInsertion:
    def test_initial_query_matches_single_shot_engine(self):
        session = tc_session()
        engine = ExecutionEngine(build_transitive_closure_program(EDGES))
        assert set(session.fetch("path")) == engine.evaluate()["path"]

    def test_insert_extends_the_fixpoint_incrementally(self):
        session = tc_session()
        report = session.insert_facts("edge", [(4, 5)])
        assert report.strategy == "incremental"
        assert report.inserted == 1
        assert (1, 6) in session.fetch("path")  # 1→...→4→5→6 now closed
        session.self_check()

    def test_repeat_fetch_reuses_the_decoded_result(self):
        # Decoding is memoised against the cached encoded set: polling an
        # unchanged relation must not pay an O(n) re-decode per call.
        session = tc_session()
        first = session.fetch("path")
        assert session.fetch("path") is first
        session.insert_facts("edge", [(4, 5)])
        changed = session.fetch("path")
        assert changed is not first
        assert session.fetch("path") is changed

    def test_duplicate_inserts_are_noops(self):
        session = tc_session()
        before = session.fetch("path")
        report = session.insert_facts("edge", [(1, 2)])
        assert report.inserted == 0
        assert session.fetch("path") == before

    def test_insert_into_idb_relation_is_allowed(self):
        session = tc_session()
        report = session.insert_facts("path", [(9, 10)])
        assert report.inserted == 1
        assert (9, 10) in session.fetch("path")
        session.self_check()

    def test_unknown_relation_and_bad_arity_are_rejected(self):
        session = tc_session()
        with pytest.raises(KeyError):
            session.insert_facts("nope", [(1, 2)])
        with pytest.raises(ValueError):
            session.insert_facts("edge", [(1, 2, 3)])


class TestRetraction:
    def test_retraction_removes_downstream_derivations(self):
        session = tc_session()
        report = session.retract_facts("edge", [(2, 3)])
        assert report.retracted == 1
        assert report.over_deleted >= 3  # (2,3) plus (1,3),(2,4),(1,4),(3,4 keeps)
        paths = session.fetch("path")
        assert (1, 3) not in paths and (1, 4) not in paths
        assert (3, 4) in paths
        session.self_check()

    def test_rederivation_restores_alternative_support(self):
        # Two parallel routes 1→2: retracting one must keep path(1,2).
        session = tc_session([(1, 2), (1, 3), (3, 2)])
        session.retract_facts("edge", [(1, 2)])
        assert (1, 2) in session.fetch("path")
        session.self_check()

    def test_cycle_retraction_converges(self):
        session = tc_session([(1, 2), (2, 3), (3, 1)])
        session.retract_facts("edge", [(2, 3)])
        paths = session.fetch("path")
        assert paths == frozenset({(1, 2), (3, 1), (3, 2)})

    def test_retracting_nonbase_rows_is_ignored(self):
        session = tc_session()
        report = session.retract_facts("edge", [(7, 8)])
        assert report.retracted == 0 and report.over_deleted == 0
        # Derived (non-base) facts cannot be retracted either.
        report = session.retract_facts("path", [(1, 3)])
        assert report.retracted == 0
        assert (1, 3) in session.fetch("path")

    def test_retract_then_reinsert_round_trips(self):
        session = tc_session()
        before = session.fetch("path")
        session.retract_facts("edge", [(2, 3)])
        session.insert_facts("edge", [(2, 3)])
        assert session.fetch("path") == before

    def test_indexes_stay_consistent_and_can_be_rebuilt(self):
        session = tc_session()
        session.retract_facts("edge", [(2, 3)])
        assert verify_indexes(session.storage) == []
        rebuild_indexes(session.storage, "path")
        assert verify_indexes(session.storage) == []

    def test_over_delete_reports_the_cone(self):
        # over_delete is an internal API: it speaks the session storage's
        # value domain (encoded under dictionary interning) and expects the
        # session's pre-encoded delta plans.
        session = tc_session([(1, 2), (2, 3)])
        session.refresh()
        symbols = session.storage.symbols
        cone = over_delete(
            session.program, session.storage,
            {"edge": {symbols.lookup_row((1, 2))}},
            SubqueryEvaluator(session.storage),
            plans_by_delta=session._dred_delta_plans,
        )

        def decoded(rows):
            return set(symbols.resolve_rows(rows))

        assert decoded(cone.rows("edge")) == {(1, 2)}
        assert decoded(cone.rows("path")) == {(1, 2), (1, 3)}


class TestResultCache:
    def test_repeated_queries_hit_the_cache(self):
        session = tc_session()
        session.fetch("path")
        session.fetch("path")
        assert session.cache.stats.hits == 1

    def test_mutation_invalidates_dependent_relations(self):
        session = tc_session()
        session.fetch("path")
        session.insert_facts("edge", [(6, 7)])
        session.fetch("path")  # stale: edge generation moved
        assert session.cache.stats.invalidations >= 1
        session.fetch("path")
        assert session.cache.stats.hits >= 1

    def test_unrelated_relations_keep_their_entries(self):
        # Two independent components: island edges don't invalidate... the
        # dependency unit is the relation, so mutate an unrelated relation.
        program = build_transitive_closure_program(EDGES)
        program.declare_relation("tag", 1)
        program.add_fact("tag", ("a",))
        session = IncrementalSession(program, EngineConfig.interpreted())
        session.fetch("path")
        session.insert_facts("tag", [("b",)])
        session.fetch("path")
        assert session.cache.stats.hits == 1  # tag is not a dependency of path

    def test_sessions_with_different_facts_do_not_collide_in_a_shared_cache(self):
        # Same rules, different EDB: keys must differ (the generation vectors
        # coincide, so only the facts-aware fingerprint keeps them apart).
        shared = ResultCache()
        a = tc_session([(1, 2)], cache=shared)
        assert set(a.fetch("path")) == {(1, 2)}
        b = tc_session([(3, 4)], cache=shared)
        assert set(b.fetch("path")) == {(3, 4)}
        assert set(a.fetch("path")) == {(1, 2)}

    def test_replica_sessions_share_cache_entries(self):
        shared = ResultCache()
        a = tc_session(cache=shared)
        b = tc_session(cache=shared)
        a.fetch("path")
        b.fetch("path")
        assert shared.stats.hits == 1

    def test_diverging_update_streams_fork_the_shared_cache(self):
        # Different mutations advance generation counters identically, so
        # only the stream digest keeps diverged sessions apart.
        shared = ResultCache()
        a = tc_session([(1, 2)], cache=shared)
        b = tc_session([(1, 2)], cache=shared)
        a.insert_facts("edge", [(2, 3)])
        b.insert_facts("edge", [(5, 6)])
        a.fetch("path")
        assert set(b.fetch("path")) == {(1, 2), (5, 6)}

    def test_identical_update_streams_keep_sharing(self):
        shared = ResultCache()
        a = tc_session(cache=shared)
        b = tc_session(cache=shared)
        a.insert_facts("edge", [(4, 5)])
        b.insert_facts("edge", [(4, 5)])
        a.fetch("path")
        b.fetch("path")
        assert shared.stats.hits == 1

    def test_noop_batches_do_not_invalidate_or_fork(self):
        session = tc_session()
        session.fetch("path")
        session.retract_facts("edge", [(99, 100)])  # never asserted
        session.insert_facts("edge", [(1, 2)])      # already live
        session.fetch("path")
        assert session.cache.stats.hits == 1
        # ...and a replica that applied the same no-ops still shares.
        shared = ResultCache()
        a = tc_session(cache=shared)
        b = tc_session(cache=shared)
        a.retract_facts("edge", [(99, 100)])
        a.fetch("path")
        b.fetch("path")
        assert shared.stats.hits == 1

    def test_cache_eviction_respects_capacity(self):
        cache = ResultCache(max_entries=1)
        session = tc_session(cache=cache)
        session.fetch("path")
        session.fetch("edge")
        assert len(cache) == 1


class TestFallbackAndFingerprint:
    def test_negation_program_falls_back_to_recompute(self):
        session = IncrementalSession(build_primes_program(limit=30))
        assert not session.incremental_capable
        before = set(session.fetch("prime"))
        report = session.insert_facts("num", [(31,), (32,)])
        assert report.strategy == "recompute"
        assert report.inserted == 2
        after = set(session.fetch("prime"))
        # 31 is prime; 32 also lands in `prime` because the composite rule's
        # product filter is capped at the original limit constant — either
        # way the fallback must match from-scratch evaluation exactly.
        assert after != before and (31,) in after
        session.self_check()

    def test_negation_program_retraction_recomputes(self):
        session = IncrementalSession(build_primes_program(limit=30))
        session.refresh()
        victim = (30,)
        # Storage introspection speaks the encoded domain.
        assert session.storage.is_base_row(
            "num", session.storage.symbols.lookup_row(victim)
        )
        report = session.retract_facts("num", [victim])
        assert report.strategy == "recompute" and report.retracted == 1
        assert victim not in session.fetch("num")
        session.self_check()

    def test_noop_batches_skip_the_fallback_recompute(self):
        session = IncrementalSession(build_primes_program(limit=30))
        session.refresh()
        generations = dict(session.storage.generations())
        # Retract rows never asserted; re-assert an existing base row
        # (base rows are stored encoded: decode before re-asserting).
        symbols = session.storage.symbols
        some_base = next(
            (name, symbols.resolve_row(row))
            for name in session.storage.relation_names()
            for row in sorted(session.storage.base_rows(name), key=repr)[:1]
        )
        session.retract_facts(some_base[0], [(-99,) * len(some_base[1])])
        session.insert_facts(some_base[0], [some_base[1]])
        assert session.storage.generations() == generations  # no rebuild ran

    def test_fingerprint_is_stable_and_structure_sensitive(self):
        p1 = build_transitive_closure_program(EDGES)
        p2 = build_transitive_closure_program(EDGES)
        assert fingerprint_program(p1) == fingerprint_program(p2)
        assert fingerprint_program(p1) == fingerprint_program(p1.with_rules(p1.rules))
        p3 = build_transitive_closure_program(EDGES, ordering="worst")
        assert fingerprint_program(p1) != fingerprint_program(p3)

    def test_fingerprint_ignores_facts_unless_asked(self):
        p1 = build_transitive_closure_program([(1, 2)])
        p2 = build_transitive_closure_program([(3, 4)])
        assert fingerprint_program(p1) == fingerprint_program(p2)
        assert fingerprint_program(p1, include_facts=True) != fingerprint_program(
            p2, include_facts=True
        )

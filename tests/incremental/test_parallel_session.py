"""IncrementalSession + sharding: propagation paths, fallbacks, lifecycle."""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.analyses.registry import get_benchmark
from repro.core.config import EngineConfig
from repro.incremental import IncrementalSession

EDGES = [(1, 2), (2, 3), (3, 4), (4, 5), (6, 7), (7, 1)]


@pytest.fixture
def sharded_session():
    session = IncrementalSession(
        build_transitive_closure_program(EDGES), EngineConfig.parallel(shards=3)
    )
    yield session
    session.close()


class TestShardedPropagation:
    def test_insert_batches_propagate_shard_parallel(self, sharded_session):
        report = sharded_session.insert_facts("edge", [(5, 6), (8, 1)])
        assert report.strategy == "incremental-sharded"
        assert report.propagated > 0
        sharded_session.self_check()

    def test_shard_state_persists_across_batches(self, sharded_session):
        sharded_session.insert_facts("edge", [(5, 6)])
        state = sharded_session._shard_state
        assert state is not None
        sharded_session.insert_facts("edge", [(8, 9), (9, 1)])
        assert sharded_session._shard_state is state
        sharded_session.self_check()

    def test_retraction_syncs_replicas(self, sharded_session):
        sharded_session.insert_facts("edge", [(5, 6)])
        # DRed itself runs serially on the global storage; only the
        # propagation of rederivation survivors (if any) is sharded.
        report = sharded_session.retract_facts("edge", [(2, 3)])
        assert report.retracted == 1
        sharded_session.self_check()
        # The persistent replicas must have followed the deletion cone:
        # the next sharded insert sees consistent state.
        report = sharded_session.insert_facts("edge", [(2, 3)])
        assert report.strategy == "incremental-sharded"
        sharded_session.self_check()

    def test_retraction_without_rederivation_stays_serial(self):
        with IncrementalSession(
            build_transitive_closure_program([(1, 2), (2, 3)]),
            EngineConfig.parallel(shards=2),
        ) as session:
            report = session.retract_facts("edge", [(2, 3)])
            assert report.strategy == "incremental"
            assert report.rederived == 0
            session.self_check()

    def test_mixed_batches_stay_correct(self, sharded_session):
        report = sharded_session.apply(
            inserts={"edge": [(5, 8), (8, 9)]}, retracts={"edge": [(1, 2)]}
        )
        assert report.strategy == "incremental-sharded"
        sharded_session.self_check()

    def test_queries_and_cache_work_when_sharded(self, sharded_session):
        before = sharded_session.fetch("path")
        # The cache holds the encoded row set; fetch() decodes per call.
        cached = sharded_session.fetch_encoded("path")
        assert sharded_session.fetch_encoded("path") is cached  # cache hit
        assert sharded_session.fetch("path") == before
        sharded_session.insert_facts("edge", [(5, 6)])
        after = sharded_session.fetch("path")
        assert after > before  # strictly more reachability


class TestFallbacks:
    def test_single_shard_config_uses_serial_path(self):
        session = IncrementalSession(
            build_transitive_closure_program(EDGES), EngineConfig.parallel(shards=1)
        )
        report = session.insert_facts("edge", [(5, 6)])
        assert report.strategy == "incremental"
        assert session._shard_state is None

    def test_negation_programs_fall_back_to_recompute(self):
        spec = get_benchmark("primes")
        session = IncrementalSession(spec.build(), EngineConfig.parallel(shards=2))
        report = session.insert_facts("num", [(211,)])
        assert report.strategy == "recompute"
        assert session._shard_state is None
        session.self_check()

    def test_jit_base_config_composes(self):
        config = EngineConfig.parallel(shards=2, base=EngineConfig.jit("lambda"))
        with IncrementalSession(
            build_transitive_closure_program(EDGES), config
        ) as session:
            report = session.insert_facts("edge", [(5, 6)])
            assert report.strategy == "incremental-sharded"
            session.self_check()


class TestLifecycle:
    def test_close_is_idempotent(self, sharded_session):
        sharded_session.insert_facts("edge", [(5, 6)])
        sharded_session.close()
        sharded_session.close()
        assert sharded_session._shard_state is None

    def test_context_manager_closes(self):
        with IncrementalSession(
            build_transitive_closure_program(EDGES), EngineConfig.parallel(shards=2)
        ) as session:
            session.insert_facts("edge", [(5, 6)])
            assert session._shard_state is not None
        assert session._shard_state is None

"""Regression: session reuse must keep folding per-update profiles.

``Connection.explain()`` renders the session-lifetime profile.  Updates on
a reused session run through side paths (the DRed + delta-propagation tree,
and — under sharding — the replicated worker rounds), and those executions
historically vanished from the profile: after the first mutation the
explain output still described only the initial fixpoint (no new
iterations, stale relation sizes, no vectorized batch counts).  These tests
pin the fix for both the vectorized serial path and the sharded one.
"""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.incremental import IncrementalSession

EDGES = [(i, i + 1) for i in range(20)]


def fresh_session(config):
    return IncrementalSession(build_transitive_closure_program(EDGES), config)


@pytest.mark.parametrize("config", [
    EngineConfig.interpreted().with_(executor="vectorized"),
    EngineConfig.parallel(shards=2, pool="thread").with_(executor="vectorized"),
], ids=["vectorized-serial", "vectorized-sharded"])
def test_updates_keep_extending_the_lifetime_profile(config):
    with fresh_session(config) as session:
        session.refresh()
        after_fixpoint = len(session.profile.iterations)
        assert after_fixpoint > 0
        vectorized_after_fixpoint = session.profile.sources.vectorized

        session.insert_facts("edge", [(100, 0)])
        session.insert_facts("edge", [(101, 100)])

        assert len(session.profile.iterations) > after_fixpoint, (
            "update propagation recorded no iterations in the session profile"
        )
        assert session.profile.sources.vectorized > vectorized_after_fixpoint, (
            "update sub-queries missing from the lifetime source counters"
        )
        # Relation sizes must describe the *current* state, not the initial
        # fixpoint: both inserts extend the closure.
        assert session.profile.result_sizes["path"] == len(
            session.fetch("path")
        )


@pytest.mark.parametrize("config", [
    EngineConfig.interpreted().with_(executor="vectorized"),
    EngineConfig.parallel(shards=2, pool="thread").with_(executor="vectorized"),
], ids=["vectorized-serial", "vectorized-sharded"])
def test_explain_reflects_updates_after_session_reuse(config):
    from repro.api.database import Database

    with Database(build_transitive_closure_program(EDGES), config) as db:
        with db.connect() as conn:
            conn.query("path")
            before = conn.explain("path")
            conn.insert_facts("edge", [(100, 0)])
            after = conn.explain("path")

    def iteration_count(text):
        for line in text.splitlines():
            if line.startswith("execution: "):
                return int(line.split()[1])
        raise AssertionError(f"no execution line in explain output:\n{text}")

    assert iteration_count(after) > iteration_count(before), (
        "explain() dropped the update's iterations on session reuse"
    )
    assert "vectorized" in after


def test_retraction_profiles_fold_too():
    config = EngineConfig.interpreted().with_(executor="vectorized")
    with fresh_session(config) as session:
        session.refresh()
        after_fixpoint = len(session.profile.iterations)
        session.retract_facts("edge", [(5, 6)])
        session.insert_facts("edge", [(5, 6)])
        assert len(session.profile.iterations) > after_fixpoint
        assert session.profile.result_sizes["path"] == len(session.fetch("path"))

"""Unit tests for MVCC storage snapshots: publish, pin, COW sharing, GC."""

import gc

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.incremental import IncrementalSession
from repro.incremental.snapshots import SnapshotManager

EDGES = [(1, 2), (2, 3), (3, 4)]


def tc_session(edges=EDGES, config=None):
    session = IncrementalSession(
        build_transitive_closure_program(edges),
        config or EngineConfig.interpreted(),
    )
    session.enable_snapshots()
    return session


class TestPublication:
    def test_enable_publishes_the_initial_fixpoint_as_version_zero(self):
        session = tc_session()
        snapshot = session.snapshots.latest()
        assert snapshot.version == 0
        assert snapshot.decoded_rows("path") == frozenset(
            session.fetch("path")
        )

    def test_enable_is_idempotent(self):
        session = tc_session()
        manager = session.snapshots
        assert session.enable_snapshots() is manager
        assert manager.latest_version() == 0

    def test_each_mutation_batch_publishes_one_version(self):
        session = tc_session()
        session.insert_facts("edge", [(4, 5)])
        session.retract_facts("edge", [(1, 2)])
        assert session.snapshots.latest_version() == 2
        assert session.snapshots.published == 3

    def test_old_versions_stay_readable_while_pinned(self):
        session = tc_session()
        before = session.snapshots.acquire()
        session.insert_facts("edge", [(4, 5)])
        after = session.snapshots.latest()
        assert (1, 5) not in before.decoded_rows("path")
        assert (1, 5) in after.decoded_rows("path")
        session.snapshots.release(before.version)

    def test_unknown_relation_raises_with_candidates(self):
        session = tc_session()
        with pytest.raises(KeyError, match="path"):
            session.snapshots.latest().rows_of("nope")


class TestCopyOnWrite:
    def test_untouched_relations_share_the_same_frozenset_object(self):
        session = tc_session()
        v0 = session.snapshots.acquire()
        session.insert_facts("path", [(9, 10)])  # touches path, not edge
        v1 = session.snapshots.latest()
        assert v1.rows_of("edge") is v0.rows_of("edge")
        assert v1.rows_of("path") is not v0.rows_of("path")
        session.snapshots.release(v0.version)

    def test_generations_record_what_each_version_saw(self):
        session = tc_session()
        v0 = session.snapshots.acquire()
        session.insert_facts("edge", [(4, 5)])
        v1 = session.snapshots.latest()
        assert v1.generations["edge"] > v0.generations["edge"]
        assert v1.mutation_version > v0.mutation_version
        session.snapshots.release(v0.version)


class TestPinningAndGC:
    def test_unpinned_superseded_versions_are_collected(self):
        session = tc_session()
        session.insert_facts("edge", [(4, 5)])
        session.insert_facts("edge", [(5, 6)])
        assert session.snapshots.live_versions() == (2,)
        assert session.snapshots.collected == 2

    def test_pinned_versions_survive_until_released(self):
        session = tc_session()
        manager = session.snapshots
        pinned = manager.acquire()
        session.insert_facts("edge", [(4, 5)])
        assert manager.live_versions() == (0, 1)
        manager.release(pinned.version)
        assert manager.live_versions() == (1,)

    def test_release_is_refcounted(self):
        session = tc_session()
        manager = session.snapshots
        manager.acquire()
        manager.acquire()
        session.insert_facts("edge", [(4, 5)])
        manager.release(0)
        assert manager.live_versions() == (0, 1)
        manager.release(0)
        assert manager.live_versions() == (1,)

    def test_release_of_unpinned_version_raises(self):
        # A stray release used to silently return; with another reader
        # still holding the version it would instead decrement *their*
        # refcount and let GC collect a snapshot under active use.
        session = tc_session()
        with pytest.raises(ValueError, match="no outstanding pins"):
            session.snapshots.release(0)
        assert session.snapshots.live_versions() == (0,)

    def test_release_past_zero_pins_raises(self):
        session = tc_session()
        manager = session.snapshots
        manager.acquire()
        manager.release(0)
        with pytest.raises(ValueError, match="double release"):
            manager.release(0)
        assert session.metrics.counter(
            "snapshot_release_errors_total"
        ).value == 1

    def test_releaser_callback_fires_exactly_once(self):
        session = tc_session()
        manager = session.snapshots
        manager.acquire()
        manager.acquire()
        callback = manager.releaser(0)
        callback()
        callback()  # extra invocations no-op instead of raising/stealing
        assert manager.pin_count(0) == 1
        assert (
            session.metrics.counter("snapshot_double_release_total").value == 1
        )

    def test_stats_shape(self):
        session = tc_session()
        session.snapshots.acquire()
        stats = session.snapshots.stats()
        assert stats == {
            "live": 1, "pinned": 1, "published": 1, "collected": 0,
        }


class TestManagerDirectly:
    def test_acquire_before_any_publish_raises(self):
        session = IncrementalSession(
            build_transitive_closure_program(EDGES), EngineConfig.interpreted()
        )
        manager = SnapshotManager(session.storage)
        assert manager.latest_version() is None
        with pytest.raises(RuntimeError):
            manager.acquire()
        with pytest.raises(RuntimeError):
            manager.latest()

    def test_publish_before_snapshots_enabled_raises_on_session(self):
        session = IncrementalSession(
            build_transitive_closure_program(EDGES), EngineConfig.interpreted()
        )
        with pytest.raises(RuntimeError):
            session.publish_snapshot()


class TestQueryResultPinning:
    def test_query_snapshot_pins_and_release_unpins(self):
        database = Database(build_transitive_closure_program(EDGES))
        conn = database.connect()
        manager = conn.session.enable_snapshots()
        result = conn.query_snapshot("path")
        assert result.snapshot_version == 0
        assert manager.pin_count(0) == 1
        result.release()
        assert manager.pin_count(0) == 0
        result.release()  # idempotent
        assert manager.pin_count(0) == 0
        database.close()

    def test_dropping_the_result_releases_through_the_finalizer(self):
        database = Database(build_transitive_closure_program(EDGES))
        conn = database.connect()
        manager = conn.session.enable_snapshots()
        result = conn.query_snapshot("path")
        assert manager.pin_count(0) == 1
        del result
        gc.collect()
        assert manager.pin_count(0) == 0
        database.close()

    def test_pinned_result_reads_its_version_after_newer_commits(self):
        database = Database(build_transitive_closure_program(EDGES))
        conn = database.connect()
        conn.session.enable_snapshots()
        old = conn.query_snapshot("path")
        conn.apply(inserts={"edge": [(4, 5)]})
        fresh = conn.query_snapshot("path")
        assert (1, 5) not in old
        assert (1, 5) in fresh
        assert old.snapshot_version == 0
        assert fresh.snapshot_version == 1
        database.close()

    def test_query_snapshot_requires_enabled_snapshots(self):
        database = Database(build_transitive_closure_program(EDGES))
        conn = database.connect()
        with pytest.raises(RuntimeError):
            conn.query_snapshot("path")
        database.close()

    def test_query_snapshot_of_unknown_relation_leaves_no_pin(self):
        database = Database(build_transitive_closure_program(EDGES))
        conn = database.connect()
        manager = conn.session.enable_snapshots()
        with pytest.raises(KeyError):
            conn.query_snapshot("nope")
        assert manager.pin_count() == 0
        database.close()

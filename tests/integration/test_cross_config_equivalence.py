"""Integration tests: every execution strategy agrees on every workload.

This is the repository's strongest end-to-end guarantee: the adaptive JIT
(all four backends, blocking and asynchronous, all granularities), the
ahead-of-time optimizer and the baseline engines all compute exactly the same
fixpoints as the plain interpreter on the paper's benchmark programs — the
optimization only ever changes *how fast* the answer arrives.
"""

import pytest

from repro.analyses import Ordering
from repro.analyses.registry import get_benchmark
from repro.baselines import DLXLikeEngine, SouffleLikeEngine
from repro.core.config import AOTSortMode, CompilationGranularity, EngineConfig
from repro.engine.engine import ExecutionEngine

# Workloads kept intentionally small so the whole matrix stays fast.
WORKLOADS = ["fibonacci", "ackermann", "cspa_tiny", "andersen", "inverse_functions", "csda"]

CONFIGS = [
    EngineConfig.interpreted(),
    EngineConfig.jit("irgen"),
    EngineConfig.jit("lambda"),
    EngineConfig.jit("quotes"),
    EngineConfig.jit("bytecode"),
    EngineConfig.jit("lambda", granularity=CompilationGranularity.JOIN),
    EngineConfig.jit("quotes", asynchronous=True),
    EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES, online=True),
]


@pytest.fixture(scope="module")
def reference_results():
    results = {}
    for name in WORKLOADS:
        spec = get_benchmark(name)
        engine = ExecutionEngine(spec.build(Ordering.WRITTEN), EngineConfig.interpreted())
        results[name] = engine.evaluate()[spec.query_relation]
    return results


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("config", CONFIGS[1:], ids=lambda c: c.describe())
def test_configuration_matches_interpreter(name, config, reference_results):
    spec = get_benchmark(name)
    engine = ExecutionEngine(spec.build(Ordering.WRITTEN), config)
    assert engine.evaluate()[spec.query_relation] == reference_results[name]


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("ordering", [Ordering.OPTIMIZED, Ordering.WORST])
def test_orderings_match_reference_under_jit(name, ordering, reference_results):
    spec = get_benchmark(name)
    engine = ExecutionEngine(spec.build(ordering), EngineConfig.jit("lambda"))
    assert engine.evaluate()[spec.query_relation] == reference_results[name]


@pytest.mark.parametrize("name", ["fibonacci", "andersen", "csda"])
def test_baselines_match_reference(name, reference_results):
    spec = get_benchmark(name)
    souffle = SouffleLikeEngine(mode="auto-tuned", toolchain_seconds=0.0)
    result = souffle.run(spec.build())
    assert result.relations[spec.query_relation] == reference_results[name]
    dlx = DLXLikeEngine().run(spec.build())
    assert dlx.relations[spec.query_relation] == reference_results[name]

"""Integration tests: every example script runs end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

# Child processes don't inherit the sys.path bootstrap conftest.py performs,
# so put src/ on their PYTHONPATH explicitly: the examples must run on a
# fresh checkout without the package installed.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(EXAMPLES_DIR.parent / "src")]
    + ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else [])
)


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=str(EXAMPLES_DIR.parent),
        env=_ENV,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print something useful"


@pytest.mark.slow
def test_cspa_example_at_larger_scale():
    """The pathological blow-up the example defaults away from.

    300 tuples keeps the interpreted worst-order run under a minute while
    still being 2.5x the default scale; the full 600-tuple paper scale takes
    tens of minutes interpreted and is left to manual runs.
    """
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "program_analysis_cspa.py"),
         "--tuples", "300"],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(EXAMPLES_DIR.parent),
        env=_ENV,
    )
    assert completed.returncode == 0, completed.stderr

"""Integration tests: every example script runs end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print something useful"

"""System-catalog acceptance: ``sys_`` relations vs the telemetry oracles.

The differential criteria of the introspection subsystem:

* ``conn.query("sys_spans")`` / ``sys_span_attrs`` / ``sys_queries`` agree
  row-for-row with ``QueryResult.trace()`` and the ring-buffer contents —
  across pushdown/vectorized executors and shards ∈ {1, 4};
* a Datalog rule over ``sys_queries`` selects precisely the queries the
  :class:`SlowQueryLog` logged;
* catalog relations never pollute user result sets, and the result cache
  never serves a catalog-dependent answer computed against different
  engine state.
"""

import io

import pytest

from repro import Database, EngineConfig, Program
from repro.introspect import CATALOG_COLUMNS, catalog_relation_names
from repro.telemetry import (
    RingBufferSink,
    SlowQueryLog,
    TelemetryConfig,
    query_summary_rows,
    tracing,
)

TC_SOURCE = """
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


def tc_program(n=24):
    source = TC_SOURCE + "\n".join(f"edge({i}, {i + 1})." for i in range(n))
    return source


def config_for(executor, shards, telemetry):
    if shards > 1:
        base = EngineConfig.parallel(shards=shards, pool="thread")
    else:
        base = EngineConfig()
    return base.with_(executor=executor, telemetry=telemetry)


class TestCatalogMatchesTelemetryOracles:
    @pytest.mark.parametrize("executor", ["pushdown", "vectorized"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_sys_tables_agree_with_ring_row_for_row(self, executor, shards):
        telemetry = tracing(ring=32)
        config = config_for(executor, shards, telemetry)
        with Database(tc_program(), config) as db, db.connect() as conn:
            result = conn.query("path")
            assert result.trace() is not None

            ring_traces = telemetry.ring.traces()
            expected_spans = {
                row for trace in ring_traces for row in trace.span_rows()
            }
            expected_attrs = {
                row for trace in ring_traces for row in trace.attr_rows()
            }
            assert set(conn.query("sys_spans")) == expected_spans
            assert set(conn.query("sys_span_attrs")) == expected_attrs
            assert set(conn.query("sys_queries")) == set(
                query_summary_rows(ring_traces)
            )

    def test_sharded_vectorized_catalog_reproduces_exact_span_tree(self):
        """shards=4 + vectorized: sys_spans rows for the query's trace are
        bit-for-bit the (id, parent, name, timing) tuples of ``trace()``."""
        telemetry = tracing(ring=32)
        config = config_for("vectorized", 4, telemetry)
        with Database(tc_program(), config) as db, db.connect() as conn:
            result = conn.query("path")
            trace = result.trace()
            assert trace is not None and len(trace) > 3

            rows = [
                row for row in conn.query("sys_spans")
                if row[2] == trace.trace_id
            ]
            expected = [
                (
                    span.span_id,
                    -1 if span.parent_id is None else span.parent_id,
                    trace.trace_id,
                    span.name,
                    span.start_ns,
                    span.duration_ns,
                )
                for span in trace.spans
            ]
            assert sorted(rows) == sorted(expected)

            # Joining sys_span_attrs back onto those ids recovers every
            # attribute of every span in the tree.
            attrs = {
                (row[0], row[1]): row[2]
                for row in conn.query("sys_span_attrs")
                if any(row[0] == span.span_id for span in trace.spans)
            }
            for span in trace.spans:
                for key, value in span.attributes.items():
                    assert attrs[(span.span_id, key)] == str(value)

    def test_rule_over_sys_queries_selects_exactly_the_logged_queries(self):
        stream = io.StringIO()
        ring = RingBufferSink(capacity=64)
        log = SlowQueryLog(0.0, stream=stream)  # logs every query trace
        telemetry = TelemetryConfig(sinks=(ring, log))
        config = EngineConfig().with_(telemetry=telemetry)

        with Database(tc_program(), config) as db, db.connect() as conn:
            conn.query("path")
            # A mutation trace lands in the ring but is neither logged by
            # the SlowQueryLog nor summarized into sys_queries.
            conn.insert_facts("edge", [(98, 99)])
            conn.query("path")

        # The monitor shares the ring (its catalog's trace source) but runs
        # untraced, so observing the log does not itself get logged.
        monitor = Database(
            "logged(T) :- sys_queries(T, F, R, L, Rows, C), L >= 0.",
            EngineConfig().with_(
                telemetry=TelemetryConfig(enabled=False, sinks=(ring,))
            ),
        )
        with monitor.connect() as mconn:
            selected = {row[0] for row in mconn.query("logged")}

        logged = {
            line.split()[1].split("=", 1)[1]
            for line in stream.getvalue().splitlines()
        }
        assert log.emitted == 2
        assert selected == logged


class TestCatalogHygiene:
    def test_catalog_relations_never_pollute_user_result_sets(self):
        telemetry = tracing()
        config = EngineConfig().with_(telemetry=telemetry)
        source = TC_SOURCE + "edge(1, 2). edge(2, 3).\n" + (
            "busy(R) :- sys_queries(T, F, R, L, Rows, C), L >= 0."
        )
        with Database(source, config) as db, db.connect() as conn:
            results = conn.query()
            assert all(not name.startswith("sys_") for name in results)
            listed = {row[0] for row in conn.query("sys_relations")}
            assert not any(name.startswith("sys_") for name in listed)
            assert {"edge", "path", "busy"} <= listed

    def test_result_cache_never_serves_stale_catalog_state(self):
        telemetry = tracing()
        config = EngineConfig().with_(telemetry=telemetry)
        workload = Database(tc_program(8), config)
        wconn = workload.connect()
        wconn.query("path")

        # Untraced monitor over the same ring: the only ring growth between
        # its two reads is the workload's second query.
        monitor = Database(
            "seen(T) :- sys_queries(T, F, R, L, Rows, C), L >= 0.",
            EngineConfig().with_(
                telemetry=TelemetryConfig(
                    enabled=False, sinks=tuple(telemetry.sinks)
                )
            ),
        )
        with monitor.connect() as mconn:
            first = set(mconn.query("seen"))
            wconn.query("path")  # adds one more query trace to the ring
            second = set(mconn.query("seen"))
            assert len(second) == len(first) + 1
            assert first < second
            # A sibling connection sharing the database's ResultCache must
            # compute against current catalog state, not reuse the entry
            # cached for the older ring contents.
            with monitor.connect() as mconn2:
                assert set(mconn2.query("seen")) == second
        wconn.close()

    def test_direct_catalog_reads_are_untraced_but_counted(self):
        telemetry = tracing()
        config = EngineConfig().with_(telemetry=telemetry)
        with Database(tc_program(8), config) as db, db.connect() as conn:
            conn.query("path")
            before = len(telemetry.ring)
            conn.query("sys_spans")
            conn.query("sys_queries")
            assert len(telemetry.ring) == before
            snapshot = db.metrics()
            assert snapshot["catalog_queries_total{relation=sys_spans}"] == 1
            assert snapshot["catalog_queries_total{relation=sys_queries}"] == 1

    def test_catalog_reads_force_recompute_strategy(self):
        config = EngineConfig().with_(telemetry=tracing())
        source = TC_SOURCE + "edge(1, 2).\n" + (
            "seen(T) :- sys_queries(T, F, R, L, Rows, C), L >= 0."
        )
        with Database(source, config) as db, db.connect() as conn:
            assert not conn.session.incremental_capable
            report = conn.insert_facts("edge", [(2, 3)])
            assert report.strategy == "recompute"
            conn.self_check()

    def test_self_check_passes_while_the_ring_keeps_growing(self):
        """self_check compares one catalog snapshot on both sides, even
        though the traced queries it follows have themselves grown the
        ring since the snapshot that answered them (drift ≠ divergence)."""
        config = EngineConfig().with_(telemetry=tracing())
        source = tc_program(8) + (
            "\nseen(T, R) :- sys_queries(T, F, R, L, Rows, C), L >= 0."
        )
        with Database(source, config) as db, db.connect() as conn:
            conn.query("path")
            first = conn.query("seen").count()
            conn.insert_facts("edge", [(97, 98)])
            conn.query("path")
            second = conn.query("seen").count()
            assert second > first
            conn.self_check()
            conn.self_check()  # the freeze is released: check is repeatable
            conn.query("path")  # and the catalog still refreshes afterwards
            assert conn.query("seen").count() > second


class TestCatalogContents:
    def test_sys_relations_reflects_storage(self):
        with Database(tc_program(6)) as db, db.connect() as conn:
            rows = {row[0]: row for row in conn.query("sys_relations")}
            assert rows["edge"][1] == 2           # arity
            assert rows["edge"][2] == 6           # cardinality
            assert rows["path"][2] == conn.query("path").count()

    def test_sys_symbols_tracks_interning(self):
        with Database(
            'name(1, "alpha"). name(2, "beta").'
        ) as db, db.connect() as conn:
            conn.query("name")
            ((count, bytes_estimate),) = conn.query("sys_symbols")
            assert count >= 2
            assert bytes_estimate > 0

    def test_sys_shards_reports_topology(self):
        config = EngineConfig.parallel(shards=4, pool="thread")
        with Database(tc_program(8), config) as db, db.connect() as conn:
            rows = sorted(conn.query("sys_shards"))
            assert [row[0] for row in rows] == [0, 1, 2, 3]
            assert all(row[1] == "thread" for row in rows)
        with Database(tc_program(8)) as db, db.connect() as conn:
            assert conn.query("sys_shards").count() == 0

    def test_sys_metrics_exposes_histogram_quantiles(self):
        config = EngineConfig().with_(telemetry=tracing())
        with Database(tc_program(8), config) as db, db.connect() as conn:
            conn.query("path")
            rows = set(conn.query("sys_metrics"))
            names = {row[0] for row in rows}
            assert "queries_total" in names
            series = {(row[0], row[2]) for row in rows}
            assert ("query_seconds", "histogram_p50") in series
            assert ("query_seconds", "histogram_p95") in series
            assert ("query_seconds", "histogram_p99") in series
            kinds = {row[2] for row in rows}
            assert "counter" in kinds

    def test_one_shot_database_query_serves_trace_backed_tables(self):
        telemetry = tracing()
        config = EngineConfig().with_(telemetry=telemetry)
        db = Database(tc_program(8), config)
        db.query("path")
        queries = db.query("sys_queries")
        assert queries.count() == 1
        assert db.query("sys_relations").count() == 0  # no session state
        db.close()


class TestReservedNamespace:
    def test_rule_head_in_sys_namespace_is_rejected(self):
        with pytest.raises(ValueError, match="rule bodies"):
            Database("sys_mine(x) :- edge(x, y).\nedge(1, 2).").query()

    def test_fact_in_sys_namespace_is_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            Database("sys_queries(1, 2, 3, 4, 5, 6).").query()

    def test_unknown_sys_relation_is_rejected(self):
        with pytest.raises(ValueError, match="unknown system relation"):
            Database("out(x) :- sys_not_a_table(x).").connect()

    def test_sys_relation_arity_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            Database("out(x) :- sys_queries(x).").connect()

    def test_direct_read_of_unknown_sys_relation_raises(self):
        with Database(tc_program(4)) as db, db.connect() as conn:
            with pytest.raises(KeyError, match="unknown system relation"):
                conn.query("sys_not_a_table")

    def test_every_catalog_relation_has_a_consistent_schema(self):
        assert catalog_relation_names() == tuple(sorted(CATALOG_COLUMNS))
        for name, columns in CATALOG_COLUMNS.items():
            assert name.startswith("sys_")
            assert len(columns) == len(set(columns))

"""EXPLAIN ANALYZE: operator actuals merged with join-order predictions."""

from repro import Database, EngineConfig
from repro.core.join_order import OrderingDecision
from repro.core.profile import ReorderRecord, RuntimeProfile
from repro.introspect import (
    DEFAULT_MISESTIMATE_RATIO,
    collect_operator_actuals,
    render_analyze,
)
from repro.introspect.analyze import analyze_trace
from repro.telemetry import RingBufferSink, Tracer, tracing

TC_SOURCE = """
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


def tc_program(n=16):
    return TC_SOURCE + "\n".join(f"edge({i}, {i + 1})." for i in range(n))


def operator_trace(observations):
    """A real trace with one op:* span per (name, rule, rows_in, rows_out)."""
    ring = RingBufferSink(capacity=4)
    tracer = Tracer(sinks=(ring,))
    with tracer.span("query", root=True, relation="path"):
        for name, rule, rows_in, rows_out in observations:
            with tracer.span(
                name, rule=rule, relation="edge",
                rows_in=rows_in, rows_out=rows_out,
            ):
                pass
    return ring.latest()


def profile_with_prediction(rule, estimated_rows, stage="aot"):
    profile = RuntimeProfile()
    profile.reorders.append(ReorderRecord(
        node_id=1,
        rule_name=rule,
        stage=stage,
        decision=OrderingDecision(
            original_order=("edge", "path"),
            chosen_order=("path", "edge"),
            estimated_cost=10.0,
            changed=True,
            estimated_rows=tuple(estimated_rows),
        ),
    ))
    return profile


class TestCollectOperatorActuals:
    def test_positions_merge_across_iterations(self):
        trace = operator_trace([
            ("op:join", "r1", 10, 5),
            ("op:join", "r1", 5, 2),
            ("op:join", "r1", 20, 8),   # same parent: positions 0,1,2
        ])
        (operators,) = collect_operator_actuals(trace).values()
        assert [op.position for op in operators] == [0, 1, 2]
        assert [op.join_position for op in operators] == [0, 1, 2]
        assert operators[0].rows_out == 5 and operators[0].max_rows_out == 5

    def test_non_join_operators_get_no_join_position(self):
        trace = operator_trace([
            ("op:join", "r1", 10, 5),
            ("op:negation", "r1", 5, 3),
            ("op:join", "r1", 3, 1),
        ])
        (operators,) = collect_operator_actuals(trace).values()
        assert [op.name for op in operators] == [
            "op:join", "op:negation", "op:join",
        ]
        assert [op.join_position for op in operators] == [0, None, 1]


class TestMisestimateFlagging:
    def test_actual_far_over_prediction_is_flagged(self):
        trace = operator_trace([("op:join", "r1", 10, 500)])
        profile = profile_with_prediction("r1", [5.0])
        (entry,) = analyze_trace(profile, trace)
        (item,) = entry.operators
        assert item.predicted_rows == 5.0
        assert item.ratio == 100.0
        assert item.misestimate
        text = render_analyze(profile, trace)
        assert "** misestimate **" in text
        assert "predicted~5 rows" in text

    def test_accurate_prediction_is_not_flagged(self):
        trace = operator_trace([("op:join", "r1", 10, 5)])
        profile = profile_with_prediction("r1", [5.0])
        (entry,) = analyze_trace(profile, trace)
        assert not entry.operators[0].misestimate
        assert "** misestimate **" not in render_analyze(profile, trace)

    def test_threshold_is_configurable(self):
        trace = operator_trace([("op:join", "r1", 10, 20)])
        profile = profile_with_prediction("r1", [10.0])
        (entry,) = analyze_trace(profile, trace, threshold=2.0)
        assert entry.operators[0].misestimate          # ratio 2.0 >= 2.0
        (entry,) = analyze_trace(profile, trace, threshold=2.1)
        assert not entry.operators[0].misestimate
        assert DEFAULT_MISESTIMATE_RATIO == 8.0

    def test_rule_without_prediction_renders_actuals_only(self):
        trace = operator_trace([("op:join", "r1", 10, 5)])
        text = render_analyze(RuntimeProfile(), trace)
        assert "op:join" in text
        assert "predicted~" not in text


class TestRenderFallbacks:
    def test_no_trace_explains_how_to_get_one(self):
        text = render_analyze(RuntimeProfile(), None)
        assert "no trace captured" in text

    def test_trace_without_op_spans_points_at_vectorized(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=(ring,))
        with tracer.span("query", root=True):
            pass
        text = render_analyze(RuntimeProfile(), ring.latest())
        assert "executor='vectorized'" in text


class TestConnectionExplainAnalyze:
    def test_analyze_section_shows_actuals_with_predictions(self):
        config = EngineConfig.aot().with_(
            executor="vectorized", telemetry=tracing()
        )
        with Database(tc_program(), config) as db, db.connect() as conn:
            conn.query("path")
            text = conn.explain(analyze=True)
        assert "explain analyze" in text
        assert "op:join" in text
        assert "predicted~" in text
        assert "rows_out=" in text

    def test_analyze_without_telemetry_says_so(self):
        with Database(tc_program()) as db, db.connect() as conn:
            conn.query("path")
            text = conn.explain(analyze=True)
        assert "no trace captured" in text

    def test_analyze_under_pushdown_points_at_vectorized(self):
        config = EngineConfig().with_(telemetry=tracing())
        with Database(tc_program(), config) as db, db.connect() as conn:
            conn.query("path")
            text = conn.explain(analyze=True)
        assert "executor='vectorized'" in text

    def test_plain_explain_has_no_analyze_section(self):
        config = EngineConfig().with_(telemetry=tracing())
        with Database(tc_program(), config) as db, db.connect() as conn:
            conn.query("path")
            assert "explain analyze" not in conn.explain()

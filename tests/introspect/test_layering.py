"""One-way layering: the catalog observes the engine, never the reverse.

Engine-core modules receive the catalog as an opaque duck-typed parameter
from the API layer; they must never import :mod:`repro.introspect` (the
mirror image of the telemetry-sinks rule, minus ``api``, which constructs
the catalog and so legitimately imports it).  ``.github/workflows/smoke.yml``
greps for the same rule; this test pins it in the suite.
"""

import pathlib
import re

#: Everything below repro.api in the layering diagram.
ENGINE_CORE_PACKAGES = (
    "core", "engine", "incremental", "parallel", "relational", "ir",
    "datalog",
)

IMPORT_PATTERN = re.compile(
    r"^\s*(from repro\.introspect|import repro\.introspect"
    r"|from repro import .*introspect)",
    re.MULTILINE,
)


def test_engine_core_never_imports_introspect():
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    offenders = []
    for package in ENGINE_CORE_PACKAGES:
        for path in (src / package).rglob("*.py"):
            if IMPORT_PATTERN.search(path.read_text(encoding="utf-8")):
                offenders.append(str(path))
    assert not offenders, f"engine-core imports repro.introspect: {offenders}"


def test_introspect_never_imports_engine_core():
    """The catalog reads duck-typed objects, not engine modules: it may
    import telemetry, nothing else from the package."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    pattern = re.compile(
        r"^\s*from repro\.(?!telemetry|introspect)\w+", re.MULTILINE
    )
    offenders = []
    for path in (src / "introspect").rglob("*.py"):
        if pattern.search(path.read_text(encoding="utf-8")):
            offenders.append(str(path))
    assert not offenders, f"introspect imports engine modules: {offenders}"

"""Unit tests for the IROp tree builders (semi-naive and naive)."""

import pytest

from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Aggregate, Variable
from repro.ir.builder import PlanBuilder, build_naive_ir, build_program_ir
from repro.ir.ops import (
    AggregateOp,
    DoWhileOp,
    InsertOp,
    JoinProjectOp,
    ProgramOp,
    RelationUnionOp,
    SwapClearOp,
    UnionOp,
    count_nodes,
    find_nodes,
    walk,
)
from repro.ir.printer import explain

x, y, z = Variable("x"), Variable("y"), Variable("z")


def tc_program() -> DatalogProgram:
    program = DatalogProgram("tc")
    program.add_facts("edge", [(1, 2), (2, 3)])
    program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
    program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
    return program


class TestSemiNaiveBuilder:
    def test_root_is_program_op_with_one_stratum(self):
        tree = build_program_ir(tc_program())
        assert isinstance(tree, ProgramOp)
        assert len(tree.strata) == 1

    def test_stratum_has_seed_and_loop(self):
        tree = build_program_ir(tc_program())
        stratum = tree.strata[0]
        assert stratum.loop is not None
        assert isinstance(stratum.loop, DoWhileOp)
        seed_inserts = [c for c in stratum.seed.children if isinstance(c, InsertOp)]
        assert all(i.target == InsertOp.SEED for i in seed_inserts)

    def test_loop_body_ends_with_swap_clear(self):
        tree = build_program_ir(tc_program())
        body = tree.strata[0].loop.body.children
        assert isinstance(body[-1], SwapClearOp)
        assert body[-1].relations == ("path",)

    def test_loop_contains_only_recursive_subqueries(self):
        tree = build_program_ir(tc_program())
        loop = tree.strata[0].loop
        join_ops = find_nodes(loop, JoinProjectOp)
        # Only the recursive rule contributes a delta sub-query.
        assert len(join_ops) == 1
        assert join_ops[0].plan.delta_relation() == "path"

    def test_seed_contains_every_rule(self):
        tree = build_program_ir(tc_program())
        seed_joins = find_nodes(tree.strata[0].seed, JoinProjectOp)
        assert len(seed_joins) == 2

    def test_non_recursive_program_has_no_loop(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_rule(Atom("copy", (x, y)), [Atom("edge", (x, y))])
        tree = build_program_ir(program)
        assert tree.strata[0].loop is None

    def test_aggregate_rule_becomes_aggregate_op_in_seed_only(self):
        program = DatalogProgram()
        program.add_facts("sales", [(1, 10), (1, 20), (2, 5)])
        program.add_rule(
            Atom("total", (x, Aggregate("sum", y))), [Atom("sales", (x, y))]
        )
        tree = build_program_ir(program)
        assert len(find_nodes(tree, AggregateOp)) == 1
        assert tree.strata[0].loop is None

    def test_union_structure_matches_rule_count(self):
        from repro.analyses.cspa import build_cspa_program
        from repro.workloads.program_facts import CSPADataset

        dataset = CSPADataset(assign=[(1, 2), (2, 3)], dereference=[(1, 3)])
        tree = build_program_ir(build_cspa_program(dataset))
        stratum = tree.strata[0]
        relation_unions = [
            child.source for child in stratum.loop.body.children
            if isinstance(child, InsertOp)
        ]
        assert all(isinstance(u, RelationUnionOp) for u in relation_unions)
        # VaFlow has two recursive rules (via MAlias and transitive).
        vaflow_union = next(u for u in relation_unions if u.relation == "VaFlow")
        assert len(vaflow_union.children) >= 2

    def test_unsafe_program_rejected_at_build_time(self):
        program = DatalogProgram()
        program.add_fact("q", (1,))
        program.add_rule(Atom("p", (x, y)), [Atom("q", (x,))])
        with pytest.raises(Exception):
            build_program_ir(program)

    def test_explain_renders_tree(self):
        tree = build_program_ir(tc_program())
        text = explain(tree)
        assert "Program[tc]" in text
        assert "DoWhile" in text
        assert "σπ⋈" in text


class TestNaiveBuilder:
    def test_naive_tree_has_no_delta_sources(self):
        tree = build_naive_ir(tc_program())
        from repro.relational.storage import DatabaseKind

        for join in find_nodes(tree, JoinProjectOp):
            assert all(
                source.kind != DatabaseKind.DELTA_KNOWN
                for source in join.plan.sources
            )

    def test_naive_and_semi_naive_count_nodes(self):
        semi = build_program_ir(tc_program())
        naive = build_naive_ir(tc_program())
        assert count_nodes(semi) > 0
        assert count_nodes(naive) > 0

    def test_walk_visits_all_nodes(self):
        tree = build_program_ir(tc_program())
        visited = list(walk(tree))
        assert visited[0] is tree
        assert any(isinstance(node, SwapClearOp) for node in visited)

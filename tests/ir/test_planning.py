"""Unit tests for sub-query planning (delta choices, legalization)."""

import pytest

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.ir.planning import (
    build_join_plan,
    delta_subqueries,
    legalize_literal_order,
    positive_atom_permutation,
    seed_plan,
)
from repro.relational.operators import AtomSource
from repro.relational.storage import DatabaseKind

x, y, z = Variable("x"), Variable("y"), Variable("z")


def tc_rule() -> Rule:
    return Rule(Atom("path", (x, z)), (Atom("path", (x, y)), Atom("edge", (y, z))), "tc")


class TestBuildJoinPlan:
    def test_seed_plan_reads_derived_everywhere(self):
        plan = seed_plan(tc_rule())
        kinds = [s.kind for s in plan.sources]
        assert all(k == DatabaseKind.DERIVED for k in kinds)

    def test_delta_index_marks_one_atom(self):
        plan = build_join_plan(tc_rule(), delta_index=0)
        assert plan.sources[0].kind == DatabaseKind.DELTA_KNOWN
        assert plan.sources[1].kind == DatabaseKind.DERIVED

    def test_delta_index_out_of_range(self):
        with pytest.raises(ValueError):
            build_join_plan(tc_rule(), delta_index=5)

    def test_atom_order_permutation(self):
        plan = build_join_plan(tc_rule(), atom_order=[1, 0])
        assert plan.sources[0].literal.relation == "edge"

    def test_invalid_atom_order(self):
        with pytest.raises(ValueError):
            build_join_plan(tc_rule(), atom_order=[0, 0])

    def test_builtins_placed_after_binding_atoms(self):
        rule = Rule(
            Atom("p", (x, z)),
            (Comparison("<", y, Constant(9)), Atom("a", (x, y)), Assignment(z, y + 1)),
        )
        plan = build_join_plan(rule)
        kinds = [type(s.literal).__name__ for s in plan.sources]
        assert kinds == ["Atom", "Comparison", "Assignment"]

    def test_negated_atom_placed_after_binders(self):
        rule = Rule(
            Atom("p", (x,)),
            (Atom("blocked", (x,), negated=True), Atom("node", (x,))),
        )
        plan = build_join_plan(rule)
        assert isinstance(plan.sources[0].literal, Atom)
        assert not plan.sources[0].literal.negated
        assert plan.sources[1].literal.negated


class TestDeltaSubqueries:
    def test_one_subquery_per_recursive_occurrence(self):
        rule = Rule(
            Atom("path", (x, z)),
            (Atom("path", (x, y)), Atom("path", (y, z))),
        )
        plans = delta_subqueries(rule, ["path"])
        assert len(plans) == 2
        assert plans[0].sources[0].kind == DatabaseKind.DELTA_KNOWN
        assert plans[1].sources[1].kind == DatabaseKind.DELTA_KNOWN

    def test_non_recursive_rule_has_no_delta_subqueries(self):
        rule = Rule(Atom("path", (x, y)), (Atom("edge", (x, y)),))
        assert delta_subqueries(rule, ["path"]) == []

    def test_cspa_valias_rule_has_three_subqueries(self):
        v0, v1, v2, v3 = (Variable(f"v{i}") for i in range(4))
        rule = Rule(
            Atom("VAlias", (v1, v2)),
            (
                Atom("VaFlow", (v0, v2)),
                Atom("VaFlow", (v3, v1)),
                Atom("MAlias", (v3, v0)),
            ),
        )
        plans = delta_subqueries(rule, ["VaFlow", "VAlias", "MAlias"])
        assert len(plans) == 3


class TestLegalization:
    def test_unplaceable_literal_raises(self):
        with pytest.raises(ValueError):
            legalize_literal_order(
                [AtomSource(Atom("a", (x,)), DatabaseKind.DERIVED)],
                [Comparison("<", y, Constant(1))],
            )

    def test_assignment_chain_ordering(self):
        sources = [AtomSource(Atom("a", (x,)), DatabaseKind.DERIVED)]
        others = [Assignment(z, y + 1), Assignment(y, x + 1)]
        ordered = legalize_literal_order(sources, others)
        names = [
            s.literal.target.name if isinstance(s.literal, Assignment) else "atom"
            for s in ordered
        ]
        assert names == ["atom", "y", "z"]

    def test_ground_builtin_can_lead(self):
        sources = [AtomSource(Atom("a", (x,)), DatabaseKind.DERIVED)]
        others = [Comparison("<", Constant(1), Constant(2))]
        ordered = legalize_literal_order(sources, others)
        assert isinstance(ordered[0].literal, Comparison)


class TestPermutation:
    def test_positive_atom_permutation_preserves_delta_marking(self):
        plan = build_join_plan(tc_rule(), delta_index=0)
        permuted = positive_atom_permutation(plan, [1, 0])
        relations = [s.literal.relation for s in permuted.sources]
        assert relations == ["edge", "path"]
        delta_kinds = {
            s.literal.relation: s.kind for s in permuted.sources
        }
        assert delta_kinds["path"] == DatabaseKind.DELTA_KNOWN

    def test_permutation_validation(self):
        plan = build_join_plan(tc_rule())
        with pytest.raises(ValueError):
            positive_atom_permutation(plan, [0, 0])

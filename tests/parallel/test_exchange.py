"""Exchange routing and the two-phase quiescence check."""

from repro.parallel.exchange import (
    ExchangeRouter,
    QuiescenceTracker,
    merge_outboxes,
)
from repro.parallel.partition import PartitionSpec


def make_router(shards=4):
    return ExchangeRouter(PartitionSpec(shards=shards, columns={"path": 0}))


class TestRouting:
    def test_route_splits_local_and_foreign(self):
        router = make_router()
        rows = [(i, i + 1) for i in range(16)]
        local, outboxes = router.route("path", rows, local_shard=1)
        assert all(router.owner("path", row) == 1 for row in local)
        for owner, batches in outboxes.items():
            assert owner != 1
            for row in batches["path"]:
                assert router.owner("path", row) == owner
        shipped = sum(len(b["path"]) for b in outboxes.values())
        assert len(local) + shipped == 16

    def test_merge_outboxes_regroups_by_destination(self):
        router = make_router(shards=2)
        _, from_zero = router.route("path", [(1, 0), (3, 0)], local_shard=0)
        _, from_one = router.route("path", [(0, 0), (2, 0)], local_shard=1)
        inboxes = merge_outboxes([from_zero, from_one], shards=2)
        assert sorted(inboxes[0].get("path", [])) == [(0, 0), (2, 0)]
        assert sorted(inboxes[1].get("path", [])) == [(1, 0), (3, 0)]


class TestQuiescence:
    def test_round_with_local_work_is_not_quiescent(self):
        tracker = QuiescenceTracker()
        stats = tracker.begin_round()
        stats.accepted_local = 5
        stats.promoted = 5
        assert not tracker.global_fixpoint(stats)

    def test_exchange_only_round_is_not_quiescent(self):
        # Phase two matters: a shard can look idle while its outbox seeds
        # new work on the owning shard.
        tracker = QuiescenceTracker()
        stats = tracker.begin_round()
        stats.accepted_local = 0
        stats.exchanged = 3
        stats.accepted_delivered = 2
        stats.promoted = 2
        assert tracker.locally_quiescent(stats)
        assert not tracker.exchange_quiescent(stats)
        assert not tracker.global_fixpoint(stats)

    def test_fully_idle_round_is_the_fixpoint(self):
        tracker = QuiescenceTracker()
        stats = tracker.begin_round()
        assert tracker.global_fixpoint(stats)
        assert tracker.round_count() == 1

    def test_totals(self):
        tracker = QuiescenceTracker()
        first = tracker.begin_round()
        first.exchanged, first.promoted = 4, 9
        second = tracker.begin_round()
        second.exchanged, second.promoted = 1, 2
        assert tracker.total_exchanged() == 5
        assert tracker.total_promoted() == 11

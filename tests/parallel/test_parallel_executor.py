"""The shard-parallel evaluator: equivalence, pools, config surface."""

import os

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.analyses.registry import get_benchmark
from repro.core.config import EngineConfig, ExecutionMode, ShardingConfig
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine, sharding_active
from repro.parallel.executor import (
    ForkWorkerPool,
    SerialPool,
    fork_available,
    resolve_pool_kind,
    resolve_shard_backend,
)
from repro.workloads.graphs import random_edges


def tc_engine(edges, config):
    return ExecutionEngine(build_transitive_closure_program(edges), config)


@pytest.fixture(scope="module")
def tc_edges():
    return random_edges(300, 500, seed=5)


@pytest.fixture(scope="module")
def tc_reference(tc_edges):
    return tc_engine(tc_edges, EngineConfig.interpreted()).evaluate()["path"]


class TestConfigSurface:
    def test_parallel_composes_with_any_base(self):
        config = EngineConfig.parallel(shards=4, base=EngineConfig.jit("lambda"))
        assert config.mode == ExecutionMode.JIT
        assert config.sharding.shards == 4

    def test_parallel_keyword_overrides(self):
        config = EngineConfig.parallel(shards=2, mode=ExecutionMode.AOT)
        assert config.mode == ExecutionMode.AOT

    def test_single_shard_is_the_standard_engine(self):
        assert not sharding_active(EngineConfig.parallel(shards=1))

    def test_naive_mode_bypasses_sharding(self):
        assert not sharding_active(
            EngineConfig.parallel(shards=4, base=EngineConfig.naive())
        )

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig.parallel(shards=0)

    def test_describe_mentions_shards(self):
        assert EngineConfig.parallel(shards=4).describe().endswith("x4")
        assert EngineConfig.parallel(shards=1).describe() == "interpreted+idx"

    def test_shard_backend_resolution(self):
        assert resolve_shard_backend(EngineConfig.parallel(shards=2)) == "bytecode"
        assert resolve_shard_backend(
            EngineConfig.parallel(shards=2, base=EngineConfig.jit("lambda"))
        ) == "lambda"
        assert resolve_shard_backend(
            EngineConfig.parallel(shards=2, base=EngineConfig.aot())
        ) is None
        assert resolve_shard_backend(
            EngineConfig.parallel(shards=2, shard_backend="none")
        ) is None


class TestPoolResolution:
    def test_more_shards_than_cores_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert resolve_pool_kind(ShardingConfig(shards=8, pool="auto"), 8) == "serial"

    def test_single_core_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_pool_kind(ShardingConfig(shards=2, pool="auto"), 2) == "serial"

    def test_pytest_environment_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert "PYTEST_CURRENT_TEST" in os.environ
        assert resolve_pool_kind(ShardingConfig(shards=2, pool="auto"), 2) == "serial"

    def test_auto_prefers_fork_processes_on_big_idle_machines(self, monkeypatch):
        # Shard evaluation is pure Python, so only processes escape the GIL.
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("CI", raising=False)
        from repro.parallel.executor import fork_available

        expected = "process" if fork_available() else "serial"
        assert resolve_pool_kind(ShardingConfig(shards=4, pool="auto"), 4) == expected

    def test_explicit_serial_always_honoured(self):
        assert resolve_pool_kind(ShardingConfig(shards=4, pool="serial"), 4) == "serial"


class TestEquivalence:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_aligned_tc_matches_reference(self, tc_edges, tc_reference, shards):
        engine = tc_engine(tc_edges, EngineConfig.parallel(shards=shards))
        assert engine.evaluate()["path"] == tc_reference
        assert engine.parallel_report.strategies() == ["aligned"]

    def test_replicated_strategy_matches_reference(self):
        program = DatalogProgram("nltc")
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        path = lambda a, b: Atom("path", (a, b))  # noqa: E731
        edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
        program.add_rule(path(x, y), [edge(x, y)])
        program.add_rule(path(x, z), [path(x, y), path(y, z)])
        program.add_facts("edge", random_edges(40, 90, seed=3))

        reference = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()
        engine = ExecutionEngine(program.copy(), EngineConfig.parallel(shards=3))
        assert engine.evaluate() == reference
        report = engine.parallel_report
        assert report.strategies() == ["replicated"]
        assert report.total_exchanged() > 0  # the exchange did real work

    def test_mixed_type_columns_match_reference(self):
        # Two regressions in one: the shard merge/broadcast paths must not
        # order rows (sorting tuples that mix ints and strs raises
        # TypeError), and partitioning must co-locate equal-comparing values
        # of different types (True == 1 == 1.0 joins across those facts).
        program = DatalogProgram("mixed")
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        path = lambda a, b: Atom("path", (a, b))  # noqa: E731
        edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
        program.add_rule(path(x, y), [edge(x, y)])
        program.add_rule(path(x, z), [path(x, y), edge(y, z)])
        program.add_facts("edge", [
            (1, "a"), ("a", 2), (2, 3), (3, "b"), ("b", 1),
            (0, True), (True, "a"), (3, 1.0),
        ])

        reference = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()
        for shards in (2, 3):
            engine = ExecutionEngine(program.copy(), EngineConfig.parallel(shards=shards))
            assert engine.evaluate() == reference

    @pytest.mark.parametrize("name", ["fibonacci", "andersen", "inverse_functions"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_benchmark_programs_match(self, name, shards):
        spec = get_benchmark(name)
        reference = ExecutionEngine(spec.build(), EngineConfig.interpreted()).evaluate()
        engine = ExecutionEngine(spec.build(), EngineConfig.parallel(shards=shards))
        assert engine.evaluate()[spec.query_relation] == reference[spec.query_relation]

    @pytest.mark.parametrize("base", [
        EngineConfig.jit("bytecode"),
        EngineConfig.jit("lambda"),
        EngineConfig.aot(),
    ], ids=lambda c: c.describe())
    def test_modes_compose(self, tc_edges, tc_reference, base):
        engine = tc_engine(tc_edges, EngineConfig.parallel(shards=2, base=base))
        assert engine.evaluate()["path"] == tc_reference

    def test_negation_program_matches(self):
        spec = get_benchmark("primes")
        reference = ExecutionEngine(spec.build(), EngineConfig.interpreted()).evaluate()
        engine = ExecutionEngine(spec.build(), EngineConfig.parallel(shards=2))
        assert engine.evaluate()[spec.query_relation] == reference[spec.query_relation]

    def test_interpreted_workers_available_for_verification(self, tc_edges, tc_reference):
        engine = tc_engine(
            tc_edges, EngineConfig.parallel(shards=2, shard_backend="none")
        )
        assert engine.evaluate()["path"] == tc_reference

    def test_naive_mode_runs_single_shard(self, tc_edges, tc_reference):
        engine = tc_engine(
            tc_edges, EngineConfig.parallel(shards=4, base=EngineConfig.naive())
        )
        assert engine.evaluate()["path"] == tc_reference
        assert engine.parallel_report is None


class TestPools:
    def test_thread_pool_matches_reference(self, tc_edges, tc_reference):
        engine = tc_engine(tc_edges, EngineConfig.parallel(shards=2, pool="thread"))
        assert engine.evaluate()["path"] == tc_reference

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_fork_pool_matches_reference(self, tc_edges, tc_reference):
        engine = tc_engine(tc_edges, EngineConfig.parallel(shards=2, pool="process"))
        assert engine.evaluate()["path"] == tc_reference

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_fork_pool_surfaces_worker_errors(self):
        class Exploder:
            def boom(self):
                raise RuntimeError("kaput")

        pool = ForkWorkerPool([Exploder()])
        try:
            with pytest.raises(RuntimeError, match="kaput"):
                pool.invoke("boom")
        finally:
            pool.close()
        pool.close()  # idempotent

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_allocating_stratum_degrades_fork_pool_to_threads(self, monkeypatch):
        """Symbol-allocating plans keep shard parallelism on the thread pool.

        A forked child interning fresh ids (assignment/arithmetic heads)
        would diverge from its siblings' inherited tables, so an explicit
        process pool must substitute threads — not serial — for such
        strata, and still match the single-shard fixpoint exactly.
        """
        import repro.parallel.executor as executor_module
        from repro.datalog.literals import Assignment, Comparison

        picked = []
        original = executor_module.make_pool

        def recording(kind, workers):
            picked.append(kind)
            return original(kind, workers)

        monkeypatch.setattr(executor_module, "make_pool", recording)

        x, y, z, c, c2 = (Variable(n) for n in ("x", "y", "z", "c", "c2"))
        program = DatalogProgram("alloc_rec")
        program.declare_relation("edge", 2)
        program.declare_relation("path", 3)
        for i in range(60):
            program.add_fact("edge", (i, i + 1))
        program.add_rule(
            Atom("path", (x, y, c)), [Atom("edge", (x, y)), Assignment(c, x * 0)]
        )
        program.add_rule(
            Atom("path", (x, z, c2)),
            [
                Atom("path", (x, y, c)),
                Atom("edge", (y, z)),
                Assignment(c2, c + 1),
                Comparison("<=", c2, 8),
            ],
        )

        reference = ExecutionEngine(program, EngineConfig.interpreted()).evaluate()
        engine = ExecutionEngine(
            program, EngineConfig.parallel(shards=2, pool="process")
        )
        assert engine.evaluate()["path"] == reference["path"]
        assert "thread" in picked
        assert "process" not in picked

    def test_serial_pool_runs_in_order(self):
        calls = []

        class Recorder:
            def __init__(self, name):
                self.name = name

            def ping(self, value):
                calls.append((self.name, value))
                return value

        pool = SerialPool([Recorder("a"), Recorder("b")])
        assert pool.invoke("ping", [(1,), (2,)]) == [1, 2]
        assert calls == [("a", 1), ("b", 2)]


class TestTermination:
    def test_max_iterations_caps_the_sharded_loop(self, tc_edges):
        config = EngineConfig.parallel(shards=2, max_iterations=2)
        engine = tc_engine(tc_edges, config)
        engine.evaluate()
        report = engine.parallel_report
        assert report.strata[0].rounds <= 2

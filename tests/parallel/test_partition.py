"""Partitioning policy: stable hashing and pivot-alignment analysis."""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.ir.builder import build_program_ir, collect_loop_plans
from repro.parallel.partition import (
    PartitionSpec,
    find_aligned_columns,
    plan_stratum_partitioning,
    shard_of,
    stable_hash,
)


def _loop_plans(program):
    tree = build_program_ir(program)
    for stratum in tree.strata:
        if stratum.loop is not None:
            groups = collect_loop_plans(stratum.loop)
            return stratum, [p for _, plans in groups for p in plans]
    raise AssertionError("program has no recursive stratum")


def _nonlinear_tc():
    program = DatalogProgram("nltc")
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    path = lambda a, b: Atom("path", (a, b))  # noqa: E731
    edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
    program.add_rule(path(x, y), [edge(x, y)])
    program.add_rule(path(x, z), [path(x, y), path(y, z)])
    program.add_fact("edge", (1, 2))
    return program


class TestStableHash:
    def test_integers_hash_to_themselves(self):
        assert stable_hash(42) == 42
        assert stable_hash(-3) == -3

    def test_refines_equality_across_numeric_types(self):
        # Partitioning hashes must refine ==: equal-comparing values MUST
        # co-locate, or aligned shard-local joins silently miss matches.
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(False) == stable_hash(0) == stable_hash(0.0)
        for shards in (2, 3, 4):
            assert shard_of(True, shards) == shard_of(1, shards) == shard_of(1.0, shards)

    def test_strings_are_deterministic(self):
        # Unlike builtin hash(), the value must not depend on PYTHONHASHSEED.
        assert stable_hash("node-7") == stable_hash("node-7")
        assert stable_hash("a") != stable_hash("b")

    def test_shard_of_covers_all_shards(self):
        owners = {shard_of(value, 4) for value in range(100)}
        assert owners == {0, 1, 2, 3}


class TestAlignment:
    def test_linear_tc_aligns_on_source_column(self):
        stratum, plans = _loop_plans(build_transitive_closure_program([(1, 2)]))
        columns = find_aligned_columns(
            plans, stratum.relations, {"path": 2, "edge": 2}
        )
        assert columns == {"path": 0}

    def test_nonlinear_tc_has_no_aligned_pivot(self):
        stratum, plans = _loop_plans(_nonlinear_tc())
        assert find_aligned_columns(plans, stratum.relations, {"path": 2}) is None

    def test_mutually_recursive_aligned_pair(self):
        program = DatalogProgram("pair")
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        a = lambda s, t: Atom("a", (s, t))  # noqa: E731
        b = lambda s, t: Atom("b", (s, t))  # noqa: E731
        e = lambda s, t: Atom("e", (s, t))  # noqa: E731
        program.add_rule(a(x, z), [b(x, y), e(y, z)])
        program.add_rule(b(x, z), [a(x, y), e(y, z)])
        program.add_fact("a", (0, 1))
        program.add_fact("e", (1, 2))
        stratum, plans = _loop_plans(program)
        columns = find_aligned_columns(
            plans, stratum.relations, {"a": 2, "b": 2, "e": 2}
        )
        assert columns == {"a": 0, "b": 0}


class TestStratumPartitioning:
    def test_tc_placement(self):
        stratum, plans = _loop_plans(build_transitive_closure_program([(1, 2)]))
        partitioning = plan_stratum_partitioning(
            4, plans, stratum.relations, {"path": 2, "edge": 2},
            fact_counts={"edge": 10_000, "path": 0},
        )
        spec = partitioning.spec
        assert spec.aligned
        assert spec.columns == {"path": 0}
        assert spec.replicated == frozenset({"edge"})
        assert "edge" in partitioning.reasons

    def test_unaligned_falls_back_to_delta_partitioning(self):
        stratum, plans = _loop_plans(_nonlinear_tc())
        partitioning = plan_stratum_partitioning(
            2, plans, stratum.relations, {"path": 2, "edge": 2}
        )
        assert not partitioning.spec.aligned
        assert partitioning.spec.columns == {"path": 0}

    def test_spec_split_routes_every_row_to_its_owner(self):
        spec = PartitionSpec(shards=3, columns={"r": 1})
        rows = [(i, i * 7) for i in range(30)]
        buckets = spec.split("r", rows)
        assert sum(len(b) for b in buckets) == 30
        for shard, bucket in enumerate(buckets):
            for row in bucket:
                assert spec.owner("r", row) == shard

"""ShardedStorage: scatter, share, merge and retraction sync."""

import pytest

from repro.parallel.partition import PartitionSpec
from repro.parallel.sharded_storage import ShardedStorage
from repro.relational.storage import DatabaseKind, StorageManager


@pytest.fixture
def global_storage():
    storage = StorageManager()
    storage.declare("path", 2)
    storage.declare("edge", 2)
    storage.register_index("edge", 0)
    for row in [(i, i + 1) for i in range(20)]:
        storage.insert_derived("edge", row)
        storage.insert_derived("path", row)
    return storage


def make_sharded(global_storage, shards=4, aligned=True):
    spec = PartitionSpec(
        shards=shards, columns={"path": 0}, replicated=frozenset({"edge"}),
        aligned=aligned,
    )
    return ShardedStorage(spec, global_storage)


class TestScatterAndViews:
    def test_partition_derived_is_disjoint_and_complete(self, global_storage):
        sharded = make_sharded(global_storage)
        sharded.partition_derived(global_storage, "path")
        fragments = [shard.tuples("path") for shard in sharded.shards]
        assert set().union(*fragments) == global_storage.tuples("path")
        total = sum(len(fragment) for fragment in fragments)
        assert total == len(global_storage.tuples("path"))  # no duplicates
        for shard_id, fragment in enumerate(fragments):
            for row in fragment:
                assert sharded.spec.owner("path", row) == shard_id

    def test_replicate_derived_copies_independent_state(self, global_storage):
        sharded = make_sharded(global_storage)
        sharded.replicate_derived(global_storage, "edge")
        for shard in sharded.shards:
            assert shard.tuples("edge") == global_storage.tuples("edge")
        sharded.shards[0].insert_derived("edge", (99, 100))
        assert (99, 100) not in sharded.shards[1].tuples("edge")

    def test_share_derived_adopts_by_reference(self, global_storage):
        sharded = make_sharded(global_storage)
        sharded.share_derived(global_storage, "edge")
        source = global_storage.relation("edge")
        for shard in sharded.shards:
            assert shard.relation("edge") is source

    def test_global_view_unions_partitioned_fragments(self, global_storage):
        sharded = make_sharded(global_storage)
        sharded.partition_derived(global_storage, "path")
        assert sharded.tuples("path") == global_storage.tuples("path")
        assert sharded.cardinality("path") == 20

    def test_indexes_are_registered_per_shard(self, global_storage):
        sharded = make_sharded(global_storage)
        for shard in sharded.shards:
            assert shard.registered_indexes("edge") == (0,)


class TestDeltasAndMerge:
    def test_scatter_delta_goes_to_owner_only(self, global_storage):
        sharded = make_sharded(global_storage)
        rows = [(i, 0) for i in range(12)]
        sharded.scatter_delta("path", rows)
        seen = []
        for shard_id, shard in enumerate(sharded.shards):
            delta = shard.tuples("path", DatabaseKind.DELTA_KNOWN)
            for row in delta:
                assert sharded.spec.owner("path", row) == shard_id
            seen.extend(delta)
        assert sorted(seen) == rows

    def test_fragment_absorb_roundtrip(self, global_storage):
        # The evaluator's merge path: pull each shard's fragment and fold it
        # into a fresh global manager with absorb_rows.
        sharded = make_sharded(global_storage)
        sharded.partition_derived(global_storage, "path")
        sharded.shards[1].insert_derived("path", (1, 99))

        target = StorageManager()
        target.declare("path", 2)
        added = sum(
            target.absorb_rows("path", shard.relation("path").rows())
            for shard in sharded.shards
        )
        assert added == 21
        assert target.tuples("path") == global_storage.tuples("path") | {(1, 99)}

    def test_retract_rows_synchronises_every_shard(self, global_storage):
        sharded = make_sharded(global_storage)
        for shard in sharded.shards:
            shard.absorb_rows("path", global_storage.tuples("path"))
        removed = sharded.retract_rows("path", [(0, 1), (1, 2)])
        assert removed == 2 * len(sharded.shards)
        for shard in sharded.shards:
            assert (0, 1) not in shard.tuples("path")
            assert (1, 2) not in shard.tuples("path")


class TestStorageHelpers:
    def test_absorb_rows_bumps_generation_once(self, global_storage):
        generation = global_storage.generation("path")
        added = global_storage.absorb_rows("path", [(50, 51), (52, 53), (0, 1)])
        assert added == 2  # (0, 1) was already present
        assert global_storage.generation("path") == generation + 1
        assert global_storage.absorb_rows("path", [(50, 51)]) == 0
        assert global_storage.generation("path") == generation + 1

    def test_force_delta_ignores_derived_membership(self, global_storage):
        count = global_storage.force_delta("path", [(0, 1)])
        assert count == 1
        assert (0, 1) in global_storage.tuples("path", DatabaseKind.DELTA_KNOWN)

    def test_adopt_derived_rejects_arity_mismatch(self, global_storage):
        from repro.relational.relation import Relation

        with pytest.raises(ValueError):
            global_storage.adopt_derived("path", Relation("other", 3))

"""Acceptance property: the Database API equals the legacy API, every mode.

For randomized fact bases and insert batches, one round trip through the new
surface — ``Database(...).connect()`` → ``insert_facts`` → ``query("path")``
— must return a :class:`QueryResult` whose ``rows()`` / ``count()`` /
``explain()`` agree bit-for-bit with the legacy ``Program.solve`` /
``IncrementalSession`` results, for interpreted, JIT, AOT and
``parallel(shards ∈ {1, 2, 4})`` configurations alike.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig, Program
from repro.analyses.micro import build_transitive_closure_program
from repro.incremental import IncrementalSession


def build_tc_dsl(edges) -> Program:
    """The same transitive closure, written through the embedded DSL."""
    program = Program("tc")
    edge, path = program.relations("edge", "path", arity=2)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts(edges)
    return program

MODE_CONFIGS = [
    EngineConfig.interpreted(),
    EngineConfig.jit("lambda"),
    EngineConfig.aot(),
    EngineConfig.parallel(shards=1),
    EngineConfig.parallel(shards=2),
    EngineConfig.parallel(shards=4),
]

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
    min_size=1,
    max_size=14,
)
batch_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
    max_size=6,
)


@pytest.mark.parametrize("config", MODE_CONFIGS, ids=lambda c: c.describe())
@settings(max_examples=5, deadline=None)
@given(edges=edges_strategy, batch=batch_strategy)
def test_database_roundtrip_matches_legacy_api(config, edges, batch):
    edges = sorted(set(edges))
    batch = sorted(set(batch))

    # -- the new surface: Database -> connect -> insert_facts -> query --------
    db = Database(build_transitive_closure_program(edges), config)
    with db.connect() as conn:
        if batch:
            conn.insert_facts("edge", batch)
        result = conn.query("path")

    # -- legacy path 1: an IncrementalSession driven by hand -------------------
    with IncrementalSession(build_transitive_closure_program(edges), config) as session:
        if batch:
            session.insert_facts("edge", batch)
        legacy_session_rows = session.fetch("path")

    # -- legacy path 2: Program.solve over the full fact base ------------------
    final_edges = sorted(set(edges) | set(batch))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_solve_rows = build_tc_dsl(final_edges).solve("path", config)

    # bit-for-bit agreement across all three paths
    assert result.to_set() == set(legacy_session_rows) == legacy_solve_rows

    # QueryResult invariants: count/rows/take agree with the row set and with
    # the canonical deterministic order.
    assert result.count() == len(legacy_solve_rows)
    ordered = list(result.rows())
    assert ordered == sorted(legacy_solve_rows)
    assert list(result) == ordered
    assert result.take(3) == ordered[:3]

    # explain() names the configuration that actually ran.
    assert config.describe() in result.explain()

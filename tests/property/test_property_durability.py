"""Crash-point property: recovery from *any* WAL prefix is exact.

The durability contract is that a crash at any byte of the log loses only
un-acknowledged work: recovering from a WAL truncated at byte ``L`` must
yield bit-for-bit the state a never-crashed process had after the last
record wholly contained in those ``L`` bytes — same decoded rows in every
relation, same replay count, never a row from the torn suffix.

The oracle is a plain in-memory database replaying the same batch prefix.
Rows are strings so the comparison crosses the interned
:class:`~repro.relational.symbols.SymbolTable` in both directions: a
recovery that misaligned symbol ids would decode to different values and
fail the equality even if the encoded row sets happened to match.

The truncation sweep is exhaustive (every byte offset) for the
interpreted single-shard engine, and at every record boundary (±1 byte,
catching off-by-one framing bugs) for the vectorized and sharded
engines — the WAL bytes are engine-independent, so the cheap sweep covers
the scanner and the matrix covers replay through each execution mode.
"""

import os

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.durability import DurabilityConfig
from repro.durability.recover import RecoveryError
from repro.durability.wal import _HEADER_LEN

SEED_EDGES = [("n1", "n2"), ("n2", "n3"), ("n3", "n4")]

#: (inserts, retracts) batches — one WAL record each.  Retractions of
#: earlier inserts and re-inserts of retracted rows keep the replayed
#: fixpoint repair honest; fresh strings per batch grow the symbol table
#: so every record carries a non-empty symbol delta.
BATCHES = [
    ({"edge": [("n4", "n5"), ("n5", "n6")]}, None),
    ({"edge": [("n6", "n7")]}, {"edge": [("n1", "n2")]}),
    ({"edge": [("n1", "n2"), ("n7", "n8")]}, None),
    (None, {"edge": [("n5", "n6")]}),
    ({"edge": [("n2", "n9"), ("n9", "n4")]}, {"edge": [("n3", "n4")]}),
]

RELATIONS = ("edge", "path")

ENGINE_MATRIX = [
    pytest.param(EngineConfig.interpreted(), id="interpreted-shards1"),
    pytest.param(
        EngineConfig().with_(executor="vectorized"), id="vectorized-shards1"
    ),
    pytest.param(EngineConfig.parallel(shards=4), id="interpreted-shards4"),
    pytest.param(
        EngineConfig.parallel(shards=4, executor="vectorized"),
        id="vectorized-shards4",
    ),
]


def durable_config(directory):
    # Thresholds high enough that no checkpoint ever triggers: every
    # committed batch must survive on the WAL alone.
    return DurabilityConfig(
        dir=directory, fsync="off", checkpoint_on_close=False,
        checkpoint_every_records=10**9, checkpoint_every_bytes=1 << 40,
    )


def capture(conn):
    return {
        relation: frozenset(conn.query(relation).rows())
        for relation in RELATIONS
    }


def write_crashed_wal(directory, config):
    """Run the full workload durably; the returned bytes are the 'crashed'
    process's WAL (never checkpointed, never cleanly collapsed)."""
    database = Database(
        build_transitive_closure_program(SEED_EDGES), config,
        durability=durable_config(directory),
    )
    with database.connect() as conn:
        for inserts, retracts in BATCHES:
            conn.apply(inserts=inserts, retracts=retracts)
    database.close()
    with open(os.path.join(directory, "wal.log"), "rb") as handle:
        return handle.read()


def oracle_states():
    """State after each batch prefix, from a never-crashed plain database."""
    database = Database(build_transitive_closure_program(SEED_EDGES))
    with database.connect() as conn:
        states = [capture(conn)]
        for inserts, retracts in BATCHES:
            conn.apply(inserts=inserts, retracts=retracts)
            states.append(capture(conn))
    database.close()
    return states


def record_boundaries(wal_bytes):
    """Byte offset of every intact record boundary, header included."""
    offsets = [_HEADER_LEN]
    offset = _HEADER_LEN
    while offset < len(wal_bytes):
        length = int.from_bytes(wal_bytes[offset:offset + 4], "big")
        offset += 8 + length
        offsets.append(offset)
    return offsets


def recover_prefix(parent, tag, config, wal_bytes, length):
    """Open a database over the first ``length`` WAL bytes; return the
    decoded state and how many records recovery replayed."""
    directory = os.path.join(parent, f"crash-{tag}")
    os.makedirs(directory)
    with open(os.path.join(directory, "wal.log"), "wb") as handle:
        handle.write(wal_bytes[:length])
    database = Database(
        build_transitive_closure_program(SEED_EDGES), config,
        durability=durable_config(directory),
    )
    with database.connect() as conn:
        state = capture(conn)
        report = conn.durability.last_recovery
    database.close()
    return state, report


@pytest.fixture(scope="module")
def oracle():
    return oracle_states()


@pytest.fixture(scope="module")
def wal_bytes(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("durability-origin"))
    return write_crashed_wal(directory, EngineConfig.interpreted())


def complete_records(boundaries, length):
    """How many records fit wholly inside a ``length``-byte prefix."""
    return sum(1 for offset in boundaries[1:] if offset <= length)


class TestCrashPoints:
    def test_the_workload_produced_one_record_per_batch(self, wal_bytes):
        boundaries = record_boundaries(wal_bytes)
        assert len(boundaries) - 1 == len(BATCHES)
        assert boundaries[-1] == len(wal_bytes)

    def test_every_byte_prefix_recovers_the_oracle_state(
        self, tmp_path, oracle, wal_bytes
    ):
        """Exhaustive sweep: every truncation offset from the end of the
        header to the full file, interpreted single-shard engine."""
        boundaries = record_boundaries(wal_bytes)
        mismatches = []
        for length in range(_HEADER_LEN, len(wal_bytes) + 1):
            expected_records = complete_records(boundaries, length)
            state, report = recover_prefix(
                str(tmp_path), f"byte-{length}",
                EngineConfig.interpreted(), wal_bytes, length,
            )
            if state != oracle[expected_records]:
                mismatches.append((length, "state"))
            if report.replayed_records != expected_records:
                mismatches.append((length, "replayed"))
            if (length not in boundaries) != report.torn:
                mismatches.append((length, "torn-flag"))
        assert not mismatches, f"divergent crash points: {mismatches[:10]}"

    @pytest.mark.parametrize("config", ENGINE_MATRIX)
    def test_record_boundaries_recover_exactly_in_every_engine(
        self, tmp_path, oracle, config
    ):
        """Every record boundary (±1 byte) across the engine matrix.  The
        durable writer AND the recovering reader both run ``config``, so
        the WAL bytes themselves come from each engine's own commit path.
        """
        origin = str(tmp_path / "origin")
        os.makedirs(origin)
        wal_bytes = write_crashed_wal(origin, config)
        boundaries = record_boundaries(wal_bytes)
        assert len(boundaries) - 1 == len(BATCHES)
        lengths = set()
        for offset in boundaries:
            lengths.update(
                length for length in (offset - 1, offset, offset + 1)
                if _HEADER_LEN <= length <= len(wal_bytes)
            )
        for length in sorted(lengths):
            expected_records = complete_records(boundaries, length)
            state, report = recover_prefix(
                str(tmp_path), f"edge-{length}", config, wal_bytes, length,
            )
            assert state == oracle[expected_records], (
                f"truncation at byte {length} diverged from the oracle"
            )
            assert report.replayed_records == expected_records

    def test_truncation_inside_the_header_fails_loudly(
        self, tmp_path, wal_bytes
    ):
        """A header-short WAL cannot silently pass as empty: the header is
        written before any record is acknowledged, so a short one means
        the file is not a WAL at all."""
        directory = str(tmp_path / "crash-header")
        os.makedirs(directory)
        with open(os.path.join(directory, "wal.log"), "wb") as handle:
            handle.write(wal_bytes[:_HEADER_LEN - 3])
        with pytest.raises(RecoveryError, match="unreadable WAL"):
            Database(
                build_transitive_closure_program(SEED_EDGES),
                durability=durable_config(directory),
            ).connect()

"""Property-based tests for the core correctness claims of the paper.

Two invariants carry the whole optimization story:

1. **Order invariance** — the order of atoms within a rule body never changes
   the fixpoint (it only changes performance), so the optimizer is free to
   reorder at will.
2. **Strategy invariance** — semi-naive evaluation, naive evaluation, the JIT
   with any backend, and ahead-of-time optimization all compute the same
   fixpoint as a reference implementation.

Both are checked against randomly generated edge relations, with transitive
closure (recursive, the paper's core shape) and a reference closure computed
independently of the engine.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import AOTSortMode, EngineConfig
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.rewrite import reorder_rule_body
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine

x, y, z = Variable("x"), Variable("y"), Variable("z")

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8)),
    min_size=1,
    max_size=25,
)


def reference_closure(edges):
    """Transitive closure by plain iteration, independent of the engine."""
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


def run_closure(edges, config):
    program = build_transitive_closure_program(edges)
    return ExecutionEngine(program, config).evaluate()["path"]


class TestStrategyInvariance:
    @given(edges=edges_strategy)
    @settings(max_examples=25, deadline=None)
    def test_interpreted_matches_reference(self, edges):
        assert run_closure(edges, EngineConfig.interpreted()) == reference_closure(edges)

    @given(edges=edges_strategy)
    @settings(max_examples=15, deadline=None)
    def test_naive_and_semi_naive_agree(self, edges):
        assert run_closure(edges, EngineConfig.naive()) == run_closure(
            edges, EngineConfig.interpreted()
        )

    @given(edges=edges_strategy,
           backend=st.sampled_from(["irgen", "lambda", "quotes", "bytecode"]))
    @settings(max_examples=15, deadline=None)
    def test_jit_backends_match_reference(self, edges, backend):
        assert run_closure(edges, EngineConfig.jit(backend)) == reference_closure(edges)

    @given(edges=edges_strategy,
           sort=st.sampled_from([AOTSortMode.RULES_ONLY, AOTSortMode.FACTS_AND_RULES]),
           online=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_aot_matches_reference(self, edges, sort, online):
        config = EngineConfig.aot(sort=sort, online=online)
        assert run_closure(edges, config) == reference_closure(edges)


class TestOrderInvariance:
    @given(edges=edges_strategy, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_random_body_permutations_preserve_fixpoint(self, edges, seed):
        """Any permutation of any rule body yields the same fixpoint."""
        rng = random.Random(seed)
        program = DatalogProgram("tc")
        program.add_facts("edge", edges)
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(
            Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))]
        )
        permuted_rules = []
        for rule in program.rules:
            order = list(range(len(rule.positive_atoms())))
            rng.shuffle(order)
            permuted_rules.append(reorder_rule_body(rule, order))
        permuted = program.with_rules(permuted_rules)

        original = ExecutionEngine(program, EngineConfig.interpreted()).evaluate()["path"]
        shuffled = ExecutionEngine(permuted, EngineConfig.interpreted()).evaluate()["path"]
        assert original == shuffled

    @given(edges=edges_strategy)
    @settings(max_examples=10, deadline=None)
    def test_three_atom_rule_orderings_agree(self, edges):
        """A 3-way join rule gives the same result under all 6 atom orders."""
        import itertools

        results = []
        for order in itertools.permutations(range(3)):
            program = DatalogProgram("two_hop")
            program.add_facts("edge", edges)
            body = [Atom("edge", (x, y)), Atom("edge", (y, z)), Atom("edge", (x, z))]
            program.add_rule(Atom("triangle", (x, y, z)), [body[i] for i in order])
            results.append(
                ExecutionEngine(program, EngineConfig.interpreted()).evaluate()["triangle"]
            )
        assert all(result == results[0] for result in results)


class TestJoinOrderOptimizerProperties:
    @given(edges=edges_strategy, big=st.integers(min_value=10, max_value=10000))
    @settings(max_examples=30, deadline=None)
    def test_optimizer_output_is_a_permutation(self, edges, big):
        """The optimizer never drops, duplicates or invents literals."""
        from collections import Counter

        from repro.core.join_order import JoinOrderOptimizer
        from repro.ir.planning import build_join_plan
        from repro.datalog.rules import Rule
        from repro.relational.storage import DatabaseKind

        rule = Rule(
            Atom("p", (x, z)),
            (Atom("a", (x, y)), Atom("b", (y, z)), Atom("c", (x, z))),
        )
        plan = build_join_plan(rule, delta_index=1)

        def cards(relation, kind):
            return {"a": big, "b": 3, "c": len(edges) + 1}.get(relation, 0)

        optimized, _ = JoinOrderOptimizer().optimize_plan(plan, cards)
        assert Counter(s.literal for s in optimized.sources) == Counter(
            s.literal for s in plan.sources
        )
        delta = [s.literal.relation for s in optimized.sources if s.is_delta()]
        assert delta == ["b"]

"""Property tests: incremental sessions equal from-scratch evaluation.

The incremental subsystem's contract is exact equivalence: after *any*
sequence of insert/retract batches, an :class:`IncrementalSession` holds the
same fixpoint a fresh :class:`ExecutionEngine` computes over the surviving
base facts — in every execution mode.  Randomized update sequences are
replayed over two workloads with very different shapes: transitive closure
(single recursive relation, deep derivation chains) and Andersen's points-to
analysis (multiple mutually recursive relations, 3-way joins).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.andersen import build_andersen_program
from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.incremental import IncrementalSession
from repro.workloads.datasets import get_dataset
from repro.workloads.streaming import edge_update_stream

ALL_MODE_CONFIGS = [
    EngineConfig.interpreted(),
    EngineConfig.naive(),
    EngineConfig.jit("lambda"),
    EngineConfig.aot(),
]

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
    min_size=1,
    max_size=16,
)
mutations_strategy = st.lists(
    st.tuples(
        st.booleans(),  # True = retract (when possible), False = insert
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=12,
)


def scratch_results(program, config, query):
    return ExecutionEngine(program, config).evaluate()[query]


@pytest.mark.parametrize("config", ALL_MODE_CONFIGS, ids=lambda c: c.describe())
@settings(max_examples=10, deadline=None)
@given(edges=edges_strategy, mutations=mutations_strategy)
def test_tc_random_update_sequences_match_scratch(config, edges, mutations):
    edges = [e for e in edges if e[0] != e[1]] or [(0, 1)]
    session = IncrementalSession(build_transitive_closure_program(edges), config)
    live = set(edges)
    for retract, a, b in mutations:
        if retract and live:
            victim = sorted(live)[(a * 8 + b) % len(live)]
            session.retract_facts("edge", [victim])
            live.discard(victim)
        elif a != b:
            session.insert_facts("edge", [(a, b)])
            live.add((a, b))
        else:
            continue
        expected = scratch_results(
            build_transitive_closure_program(sorted(live)), config, "path"
        )
        assert set(session.fetch("path")) == set(expected)


@pytest.mark.parametrize("config", ALL_MODE_CONFIGS, ids=lambda c: c.describe())
def test_andersen_update_sequences_match_scratch(config):
    dataset = get_dataset("slistlib")
    session = IncrementalSession(build_andersen_program(dataset), config)
    rng = random.Random(2024)
    symbols = session.storage.symbols
    live = {
        name: set(symbols.resolve_rows(session.storage.base_rows(name)))
        for name in ("assign", "load", "store", "addressOf")
    }
    for step in range(8):
        name = rng.choice(sorted(live))
        if live[name] and rng.random() < 0.5:
            victim = rng.choice(sorted(live[name]))
            session.retract_facts(name, [victim])
            live[name].discard(victim)
        else:
            row = (f"synth_{step}", rng.choice(sorted(live["assign"] or {("a", "b")}))[0])
            session.insert_facts(name, [row])
            live[name].add(row)
        session.self_check()


@pytest.mark.parametrize("config", ALL_MODE_CONFIGS, ids=lambda c: c.describe())
def test_streamed_batches_match_scratch(config):
    """Replay a generator-produced mixed stream batch-by-batch."""
    stream = edge_update_stream(
        nodes=10, initial_edges=15, batches=6, batch_size=4,
        retract_fraction=0.4, seed=7,
    )
    session = IncrementalSession(
        build_transitive_closure_program(stream.initial["edge"]), config
    )
    for batch in stream:
        session.apply(inserts=batch.inserts, retracts=batch.retracts)
        session.self_check()

"""Property tests: dictionary-encoded storage equals the raw-object oracle.

The interning rewrite's contract is *exact* equivalence: with
``EngineConfig(interning=True)`` (the default) the engine runs its entire
fixpoint over dense integer tuples, yet every decoded result — rows, counts
and the deterministic iteration order — is bit-for-bit what the raw-object
engine (``interning=False``, the PR-4 behaviour, kept alive precisely as
this oracle) computes.  The harness replays randomized programs including
negation, comparisons and arithmetic over encoded ints, and incremental
insert/retract sequences, across interpreted/JIT/AOT × both executors ×
shards ∈ {1, 2, 4}.  See ``tests/README.md`` for the oracle table.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine
from repro.incremental import IncrementalSession

SHARD_COUNTS = (1, 2, 4)
RULE_SHAPES = ("linear", "nonlinear", "filtered", "negated", "symbolic")

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
    min_size=1,
    max_size=16,
)
mutations_strategy = st.lists(
    st.tuples(
        st.booleans(),  # True = retract (when possible), False = insert
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=10,
)


def build_random_program(edges, rule_shape):
    """Five rule shapes over the same random edge set.

    ``linear``/``nonlinear`` are plain recursion over int constants;
    ``filtered`` adds comparison and arithmetic-assignment literals (the
    builtins that must cross back into the raw domain); ``negated`` adds a
    stratified anti-join with an embedded constant; ``symbolic`` relabels
    the nodes as composite ``(str, int)`` keys with a constant filter — the
    value shape dictionary encoding exists for.
    """
    program = DatalogProgram(f"prop_intern_{rule_shape}")
    x, y, z, s = (Variable(v) for v in ("x", "y", "z", "s"))
    path = lambda a, b: Atom("path", (a, b))  # noqa: E731
    edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
    hop = lambda a, b: Atom("hop", (a, b))    # noqa: E731
    program.add_rule(path(x, y), [edge(x, y)])
    if rule_shape == "linear":
        program.add_rule(path(x, z), [path(x, y), edge(y, z)])
        program.add_rule(Atom("pinned", (x,)), [path(3, x)])
    elif rule_shape == "nonlinear":
        program.add_rule(path(x, z), [path(x, y), path(y, z)])
    elif rule_shape == "filtered":
        program.add_rule(
            path(x, z),
            [path(x, y), edge(y, z), Comparison("!=", x, z)],
        )
        program.add_rule(
            Atom("weight", (x, s)),
            [edge(x, y), Assignment(s, x + y), Comparison("<=", s, 10)],
        )
    elif rule_shape == "negated":
        program.add_rule(hop(x, z), [edge(x, y), edge(y, z)])
        program.add_rule(Atom("skip", (x, z)), [hop(x, z), ~edge(x, z)])
    else:  # symbolic: composite (str, int) constants, constant filter
        program.add_rule(path(x, z), [path(x, y), edge(y, z)])
        program.add_rule(Atom("from_zero", (y,)), [edge(("node", 0), y)])
    if rule_shape == "symbolic":
        program.add_facts(
            "edge", sorted({(("node", a), ("node", b)) for a, b in edges})
        )
    else:
        program.add_facts("edge", sorted(set(edges)))
    return program


def evaluate(program, config):
    return ExecutionEngine(program, config).evaluate()


@pytest.mark.parametrize("rule_shape", RULE_SHAPES)
@settings(max_examples=10, deadline=None)
@given(edges=edges_strategy)
def test_interning_matches_raw_oracle_across_shapes(rule_shape, edges):
    """Interpreted mode: identical relations, rows and deterministic order."""
    program = build_random_program(edges, rule_shape)
    raw = evaluate(program.copy(), EngineConfig.interpreted().with_(interning=False))
    interned = evaluate(program.copy(), EngineConfig.interpreted())
    assert interned == raw, f"{rule_shape} diverged"
    for relation in raw:
        # Bit-for-bit including the deterministic iteration order: results
        # decode at the QueryResult boundary and sort by decoded key.
        assert list(interned[relation]) == list(raw[relation])
        assert interned[relation].to_columns() == raw[relation].to_columns()


@pytest.mark.parametrize("base", [
    EngineConfig.interpreted(),
    EngineConfig.jit("lambda"),
    EngineConfig.jit("bytecode"),
    EngineConfig.jit("quotes"),
    EngineConfig.aot(),
], ids=lambda c: c.describe())
@pytest.mark.parametrize("executor", ["pushdown", "vectorized"])
@settings(max_examples=4, deadline=None)
@given(edges=edges_strategy)
def test_interning_matches_across_modes_executors_shards(base, executor, edges):
    """Encoded {interpreted, JIT, AOT} × executors × shards equals the oracle."""
    program = build_random_program(edges, "filtered")
    raw = evaluate(
        program.copy(),
        EngineConfig.interpreted().with_(interning=False),
    )
    for shards in SHARD_COUNTS:
        config = EngineConfig.parallel(shards=shards, base=base).with_(
            executor=executor
        )
        assert evaluate(program.copy(), config) == raw, (
            f"{config.describe()} diverged at {shards} shards"
        )


@pytest.mark.parametrize("shards", [1, 2])
@settings(max_examples=6, deadline=None)
@given(edges=edges_strategy, mutations=mutations_strategy)
def test_interned_sessions_replay_update_sequences(shards, edges, mutations):
    """Incremental insert/retract sequences decode to the raw oracle's rows."""
    edges = [e for e in edges if e[0] != e[1]] or [(0, 1)]
    base = EngineConfig.interpreted()
    config = (
        EngineConfig.parallel(shards=shards, base=base) if shards > 1 else base
    )
    oracle_config = EngineConfig.interpreted().with_(interning=False)
    with IncrementalSession(build_transitive_closure_program(edges), config) as session:
        live = set(edges)
        for retract, a, b in mutations:
            if retract and live:
                victim = sorted(live)[(a * 8 + b) % len(live)]
                session.retract_facts("edge", [victim])
                live.discard(victim)
            elif a != b:
                session.insert_facts("edge", [(a, b)])
                live.add((a, b))
            else:
                continue
            expected = evaluate(
                build_transitive_closure_program(sorted(live)), oracle_config
            )["path"]
            assert session.fetch("path") == expected.to_frozenset()


def test_symbol_table_is_shared_across_the_whole_engine():
    """One global table: storage, shard replicas and results share it."""
    program = build_random_program([(0, 1), (1, 2)], "symbolic")
    engine = ExecutionEngine(program, EngineConfig.parallel(shards=2))
    engine.evaluate()
    table = engine.storage.symbols
    assert not table.identity and len(table) >= 3
    stored = engine.storage.tuples("path")
    assert all(isinstance(v, int) for row in stored for v in row)
    decoded = engine.result("path").to_set()
    assert decoded == engine.storage.decoded_tuples("path")

"""Property tests: catalog hygiene invariants over randomized programs.

Two invariants, each over random edge sets:

* **No pollution** — however the workload is shaped, ``sys_`` relations
  never appear in user result sets, in ``conn.query()``'s relation map,
  or in the ``sys_relations`` listing itself.
* **Cache divergence** — result-cache validity tokens for a catalog
  reader change exactly when catalog state changes: a new trace in the
  shared ring flips the ``sys_queries`` mutation digest (so a cached
  answer computed against the older ring can never be served), while a
  read that leaves the ring untouched keeps the digest stable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.telemetry import TelemetryConfig, tracing

TC_SOURCE = """
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""

edges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=16,
)


def tc_source(edges):
    facts = "\n".join(f"edge({a}, {b})." for a, b in sorted(set(edges)))
    return TC_SOURCE + facts


def untraced_over(ring):
    """A config that reads ``ring`` through the catalog without being
    traced into it — observing must not perturb the observed."""
    return EngineConfig().with_(
        telemetry=TelemetryConfig(enabled=False, sinks=(ring,))
    )


@given(edges=edges_strategy)
@settings(max_examples=15, deadline=None)
def test_catalog_relations_never_pollute_user_results(edges):
    telemetry = tracing(ring=8)
    config = EngineConfig().with_(telemetry=telemetry)
    source = tc_source(edges) + (
        "\nbusy(R) :- sys_queries(T, F, R, L, Rows, C), L >= 0."
    )
    with Database(source, config) as db, db.connect() as conn:
        results = conn.query()
        assert all(not name.startswith("sys_") for name in results)
        for name, result in results.items():
            assert not name.startswith("sys_")
            assert result.schema.relation == name
        listed = {row[0] for row in conn.query("sys_relations")}
        assert not any(name.startswith("sys_") for name in listed)
        assert {"edge", "path", "busy"} <= listed


@given(edges=edges_strategy)
@settings(max_examples=15, deadline=None)
def test_cache_tokens_diverge_exactly_when_catalog_state_differs(edges):
    telemetry = tracing(ring=8)
    workload = Database(tc_source(edges), EngineConfig().with_(
        telemetry=telemetry,
    ))
    wconn = workload.connect()
    wconn.query("path")

    monitor = Database(
        "seen(T) :- sys_queries(T, F, R, L, Rows, C), L >= 0.",
        untraced_over(telemetry.ring),
    )
    with monitor.connect() as mconn:
        first = set(mconn.query("seen"))
        before = mconn.session._mutation_digests["sys_queries"]

        # Re-reading without touching the ring keeps the token stable …
        assert set(mconn.query("seen")) == first
        assert mconn.session._mutation_digests["sys_queries"] == before

        # … while one more workload trace must flip it, and the fresh
        # answer must include exactly the new trace.
        wconn.query("path")
        second = set(mconn.query("seen"))
        after = mconn.session._mutation_digests["sys_queries"]
        assert after != before
        assert len(second) == len(first) + 1
        assert first < second
    wconn.close()
    workload.close()

"""Property tests: shard-parallel evaluation equals single-shard evaluation.

The subsystem's contract is *exact* equivalence: for any program and any
fact base, ``EngineConfig.parallel(shards=N)`` computes bit-for-bit the
fixpoint of the standard engine — whichever strategy (aligned shard-local
fixpoints or replicated exchange rounds) the partitioning analysis picks,
whatever the execution mode, and also when the evaluation happens inside an
:class:`~repro.incremental.IncrementalSession` absorbing randomized
insert/retract sequences (retraction batches fall back to the serial DRed
path and must leave the persistent shard replicas consistent).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine
from repro.incremental import IncrementalSession

SHARD_COUNTS = (1, 2, 4)

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
    min_size=1,
    max_size=16,
)
mutations_strategy = st.lists(
    st.tuples(
        st.booleans(),  # True = retract (when possible), False = insert
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=10,
)


def build_random_program(edges, rule_shape):
    """One of three rule shapes over the same random edge set.

    ``linear`` partitions with an aligned pivot, ``nonlinear`` (self-join)
    exercises the replicated strategy, ``mutual`` exercises a two-relation
    recursive stratum.
    """
    program = DatalogProgram(f"prop_{rule_shape}")
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    path = lambda a, b: Atom("path", (a, b))  # noqa: E731
    edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
    hop = lambda a, b: Atom("hop", (a, b))    # noqa: E731
    program.add_rule(path(x, y), [edge(x, y)])
    if rule_shape == "linear":
        program.add_rule(path(x, z), [path(x, y), edge(y, z)])
    elif rule_shape == "nonlinear":
        program.add_rule(path(x, z), [path(x, y), path(y, z)])
    else:  # mutual
        program.add_rule(hop(x, z), [path(x, y), edge(y, z)])
        program.add_rule(path(x, z), [hop(x, y), edge(y, z)])
    program.add_facts("edge", sorted(set(edges)))
    return program


@pytest.mark.parametrize("rule_shape", ["linear", "nonlinear", "mutual"])
@settings(max_examples=12, deadline=None)
@given(edges=edges_strategy)
def test_random_programs_match_single_shard(rule_shape, edges):
    program = build_random_program(edges, rule_shape)
    reference = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()
    for shards in SHARD_COUNTS:
        engine = ExecutionEngine(
            program.copy(), EngineConfig.parallel(shards=shards)
        )
        assert engine.evaluate() == reference, f"{rule_shape} diverged at {shards} shards"


@pytest.mark.parametrize("base", [
    EngineConfig.jit("lambda"),
    EngineConfig.aot(),
], ids=lambda c: c.describe())
@settings(max_examples=6, deadline=None)
@given(edges=edges_strategy)
def test_random_programs_match_across_modes(base, edges):
    program = build_random_program(edges, "linear")
    reference = ExecutionEngine(program.copy(), EngineConfig.interpreted()).evaluate()
    engine = ExecutionEngine(program.copy(), EngineConfig.parallel(shards=3, base=base))
    assert engine.evaluate() == reference


@pytest.mark.parametrize("shards", [2, 4])
@settings(max_examples=8, deadline=None)
@given(edges=edges_strategy, mutations=mutations_strategy)
def test_sharded_sessions_replay_update_sequences(shards, edges, mutations):
    edges = [e for e in edges if e[0] != e[1]] or [(0, 1)]
    config = EngineConfig.parallel(shards=shards)
    with IncrementalSession(build_transitive_closure_program(edges), config) as session:
        live = set(edges)
        for retract, a, b in mutations:
            if retract and live:
                victim = sorted(live)[(a * 8 + b) % len(live)]
                session.retract_facts("edge", [victim])
                live.discard(victim)
            elif a != b:
                session.insert_facts("edge", [(a, b)])
                live.add((a, b))
            else:
                continue
            expected = ExecutionEngine(
                build_transitive_closure_program(sorted(live)),
                EngineConfig.interpreted(),
            ).evaluate()["path"]
            assert set(session.fetch("path")) == set(expected)

"""Property-based tests for the parser round trip and the code generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import get_backend
from repro.datalog.literals import Atom
from repro.datalog.parser import parse_program
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.ir.planning import build_join_plan
from repro.datalog.rules import Rule
from repro.relational.operators import evaluate_subquery
from repro.relational.storage import StorageManager

x, y, z = Variable("x"), Variable("y"), Variable("z")

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
small_ints = st.integers(min_value=0, max_value=99)


class TestParserProperties:
    @given(relation=identifiers, rows=st.lists(st.tuples(small_ints, small_ints), max_size=20))
    @settings(max_examples=50)
    def test_facts_round_trip_through_source(self, relation, rows):
        source = "\n".join(f"{relation}({a}, {b})." for a, b in rows)
        program = parse_program(source)
        parsed = {fact.values for fact in program.facts}
        assert parsed == set(rows)

    @given(rows=st.lists(st.tuples(small_ints, small_ints), min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_parsed_and_dsl_programs_agree(self, rows):
        from repro.core.config import EngineConfig
        from repro.engine.engine import ExecutionEngine

        source = "\n".join(f"edge({a}, {b})." for a, b in rows)
        source += "\npath(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).\n"
        parsed_result = ExecutionEngine(
            parse_program(source), EngineConfig.interpreted()
        ).evaluate()["path"]

        program = DatalogProgram()
        program.add_facts("edge", rows)
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        program.add_rule(Atom("path", (x, z)), [Atom("path", (x, y)), Atom("edge", (y, z))])
        dsl_result = ExecutionEngine(program, EngineConfig.interpreted()).evaluate()["path"]
        assert parsed_result == dsl_result


class TestCodegenProperties:
    @given(
        edges=st.lists(st.tuples(small_ints, small_ints), max_size=30),
        paths=st.lists(st.tuples(small_ints, small_ints), max_size=30),
        backend=st.sampled_from(["quotes", "bytecode", "lambda", "irgen"]),
        use_indexes=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_compiled_subquery_equals_interpreted(self, edges, paths, backend, use_indexes):
        """For arbitrary relation contents, every backend's compiled artifact
        computes exactly what the generic interpreter computes."""
        storage = StorageManager()
        storage.declare("edge", 2)
        storage.declare("path", 2)
        if use_indexes:
            storage.register_index("edge", 0)
            storage.register_index("path", 1)
        for row in edges:
            storage.insert_derived("edge", row)
        storage.seed_delta("path", paths)

        rule = Rule(
            Atom("path", (x, z)), (Atom("path", (x, y)), Atom("edge", (y, z))), "tc"
        )
        plan = build_join_plan(rule, delta_index=0)
        reference = evaluate_subquery(storage, plan)
        artifact = get_backend(backend).compile_plans(
            [plan], storage, use_indexes=use_indexes
        )
        assert artifact(storage) == reference

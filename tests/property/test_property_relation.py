"""Property-based tests for the relational layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.relation import Relation
from repro.relational.storage import DatabaseKind, StorageManager

rows2 = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20)),
    max_size=60,
)


class TestRelationProperties:
    @given(rows=rows2)
    def test_relation_behaves_like_a_set(self, rows):
        relation = Relation("r", 2)
        relation.insert_many(rows)
        assert relation.rows() == set(rows)
        assert len(relation) == len(set(rows))

    @given(rows=rows2, column=st.integers(min_value=0, max_value=1))
    def test_index_lookup_equals_scan_filter(self, rows, column):
        relation = Relation("r", 2)
        relation.insert_many(rows)
        indexed = Relation("r_idx", 2)
        indexed.build_index(column)
        indexed.insert_many(rows)
        values = {row[column] for row in rows} | {999}
        for value in values:
            scan = {row for row in relation.rows() if row[column] == value}
            probe = set(indexed.lookup(column, value))
            assert probe == scan

    @given(rows=rows2, probe_first=st.integers(min_value=0, max_value=20),
           probe_second=st.integers(min_value=0, max_value=20))
    def test_probe_with_two_constraints(self, rows, probe_first, probe_second):
        relation = Relation("r", 2)
        relation.build_index(0)
        relation.insert_many(rows)
        expected = {r for r in rows if r[0] == probe_first and r[1] == probe_second}
        assert set(relation.probe({0: probe_first, 1: probe_second})) == expected

    @given(rows=rows2)
    def test_insert_many_is_idempotent(self, rows):
        relation = Relation("r", 2)
        relation.insert_many(rows)
        inserted_again = relation.insert_many(rows)
        assert inserted_again == 0


class TestStorageProperties:
    @given(seed=rows2, extra=rows2)
    @settings(max_examples=40)
    def test_swap_and_clear_invariants(self, seed, extra):
        """After any sequence of seed + insert + swap, the three databases obey:
        derived ⊇ delta-known, delta-new is empty after a swap, and nothing is
        ever lost."""
        storage = StorageManager()
        storage.declare("r", 2)
        storage.seed_delta("r", seed)
        storage.insert_new_many("r", extra)
        new_rows = storage.tuples("r", DatabaseKind.DELTA_NEW)
        promoted = storage.swap_and_clear(["r"])
        derived = storage.tuples("r", DatabaseKind.DERIVED)
        known = storage.tuples("r", DatabaseKind.DELTA_KNOWN)
        assert known == new_rows
        assert derived == set(seed) | new_rows
        assert promoted == len(new_rows)
        assert storage.cardinality("r", DatabaseKind.DELTA_NEW) == 0

    @given(rows=rows2)
    @settings(max_examples=40)
    def test_insert_new_never_duplicates_derived(self, rows):
        storage = StorageManager()
        storage.declare("r", 2)
        storage.seed_delta("r", rows)
        inserted = storage.insert_new_many("r", rows)
        assert inserted == 0

"""Property tests: snapshot isolation under concurrent readers and a writer.

The serving contract is snapshot isolation: any read served from an MVCC
snapshot equals what a sequential evaluation of the same program observes
at that committed version — never a torn in-between state — no matter how
many reader threads race the writer's incremental fixpoint.  The oracle is
built first by replaying the same mutation batches sequentially and
recording the ``path`` relation after each commit; then reader threads
hammer acquire/read/release against a live session while a writer thread
replays the batches, and every observation ``(version, rows)`` must equal
the oracle at exactly that version.

Runs across the physical executors (pushdown and vectorized) and shard
counts {1, 4}, since each pair exercises a different storage write path
under the same MVCC layer.
"""

import threading
import time

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.incremental import IncrementalSession

EDGES = [(1, 2), (2, 3), (3, 4), (4, 5)]

#: (inserts, retracts) per committed batch, exercising growth, DRed
#: retraction and re-insertion.
BATCHES = [
    ({"edge": [(5, 6)]}, None),
    ({"edge": [(6, 7), (7, 8)]}, None),
    (None, {"edge": [(2, 3)]}),
    ({"edge": [(2, 3)]}, None),
    (None, {"edge": [(1, 2), (4, 5)]}),
    ({"edge": [(8, 9), (9, 1)]}, None),
]

READERS = 4

CONFIGS = [
    pytest.param(lambda: EngineConfig.interpreted(),
                 id="pushdown-shards1"),
    pytest.param(lambda: EngineConfig.interpreted().with_(
        executor="vectorized"), id="vectorized-shards1"),
    pytest.param(lambda: EngineConfig.parallel(shards=4),
                 id="pushdown-shards4"),
    pytest.param(lambda: EngineConfig.parallel(shards=4).with_(
        executor="vectorized"), id="vectorized-shards4"),
]


def sequential_oracle(make_config):
    """``{version: frozenset(path rows)}`` from a sequential replay."""
    session = IncrementalSession(
        build_transitive_closure_program(EDGES), make_config()
    )
    session.enable_snapshots()
    expected = {0: frozenset(session.fetch("path"))}
    for version, (inserts, retracts) in enumerate(BATCHES, start=1):
        session.apply(inserts, retracts)
        expected[version] = frozenset(session.fetch("path"))
    return expected


@pytest.mark.parametrize("make_config", CONFIGS)
def test_every_concurrent_read_equals_a_committed_version(make_config):
    expected = sequential_oracle(make_config)

    session = IncrementalSession(
        build_transitive_closure_program(EDGES), make_config()
    )
    manager = session.enable_snapshots()

    done = threading.Event()
    observations = []
    observed_lock = threading.Lock()
    failures = []

    def reader():
        local = []
        try:
            while not done.is_set():
                snapshot = manager.acquire()
                try:
                    local.append(
                        (snapshot.version, snapshot.decoded_rows("path"))
                    )
                finally:
                    manager.release(snapshot.version)
        except Exception as exc:  # surfaced after join
            failures.append(exc)
        with observed_lock:
            observations.extend(local)

    def writer():
        try:
            for inserts, retracts in BATCHES:
                session.apply(inserts, retracts)
                time.sleep(0.002)  # widen the interleaving window
        except Exception as exc:
            failures.append(exc)
        finally:
            done.set()

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)
    assert not failures, failures

    assert observations, "readers never completed a single read"
    for version, rows in observations:
        assert version in expected, f"read a never-committed version {version}"
        assert rows == expected[version], (
            f"read at version {version} saw a torn state: "
            f"{sorted(rows ^ expected[version])[:5]} differ"
        )

    # Final state converged and GC kept only the latest version.
    final = manager.latest()
    assert final.version == len(BATCHES)
    assert final.decoded_rows("path") == expected[len(BATCHES)]
    manager.collect()
    assert manager.live_versions() == (len(BATCHES),)
    assert manager.pin_count() == 0

"""Property tests: trace structure invariants over randomized programs.

Three invariants, each over random edge sets:

* **Interval nesting** — every child span's ``[start_ns, end_ns]`` lies
  within its parent's interval (timestamps are ``perf_counter_ns``, shared
  across threads and — via ``CLOCK_MONOTONIC`` — across forked workers).
* **Worker reparenting** — merged shard-worker spans are connected: one
  trace id, every parent id resolvable, worker iteration spans under the
  coordinator stratum span, for the thread AND the process pool (pytest
  degrades ``pool="auto"`` to serial, so both are forced explicitly).
* **Cross-executor shape** — the pushdown and vectorized executors emit
  identically shaped traces at the ``query``/``stratum``/``iteration``
  levels: semi-naive runs the same rounds whatever evaluates the bodies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.telemetry import tracing

edges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=16,
)


def traced_query(edges, config_builder):
    """Evaluate the TC program over ``edges`` traced; returns the trace."""
    telemetry = tracing(ring=4)
    config = config_builder(telemetry)
    program = build_transitive_closure_program(sorted(set(edges)))
    with Database(program, config) as db, db.connect() as conn:
        trace = conn.query("path").trace()
    assert trace is not None
    return trace


def serial_vectorized(telemetry):
    return EngineConfig.interpreted().with_(
        executor="vectorized", telemetry=telemetry,
    )


def sharded(pool):
    def build(telemetry):
        return EngineConfig.parallel(shards=3, pool=pool).with_(
            executor="vectorized", telemetry=telemetry,
        )

    return build


@settings(max_examples=15, deadline=None)
@given(edges=edges_strategy)
def test_child_intervals_nest_inside_their_parents(edges):
    trace = traced_query(edges, serial_vectorized)
    by_id = {span.span_id: span for span in trace}
    for span in trace:
        if span.parent_id is None:
            continue
        parent = by_id[span.parent_id]
        assert parent.start_ns <= span.start_ns, (
            f"{span.name} starts before its parent {parent.name}"
        )
        assert span.end_ns <= parent.end_ns, (
            f"{span.name} ends after its parent {parent.name}"
        )


@settings(max_examples=8, deadline=None)
@given(edges=edges_strategy)
def test_thread_pool_worker_spans_reparent_into_one_trace(edges):
    _assert_connected_worker_trace(traced_query(edges, sharded("thread")))


@settings(max_examples=4, deadline=None)
@given(edges=edges_strategy)
def test_process_pool_worker_spans_reparent_into_one_trace(edges):
    # The fork pool may degrade to threads when plans allocate symbols; both
    # pools drain worker buffers the same way, so the invariant holds either
    # way — this case pins the cross-process id remap when the fork sticks.
    _assert_connected_worker_trace(traced_query(edges, sharded("process")))


def _assert_connected_worker_trace(trace):
    assert len({span.trace_id for span in trace}) == 1
    by_id = {span.span_id: span for span in trace}
    assert len(by_id) == len(trace), "merged span ids collide"
    for span in trace:
        assert span.parent_id is None or span.parent_id in by_id, (
            f"orphan span {span.name}"
        )
    stratum_ids = {span.span_id for span in trace.find("stratum")}
    for span in trace.find("iteration"):
        if "shard" in span.attributes:
            assert span.parent_id in stratum_ids, (
                "worker iteration span not reparented under a stratum"
            )


@settings(max_examples=10, deadline=None)
@given(edges=edges_strategy)
def test_executors_emit_identically_shaped_traces(edges):
    def pushdown(telemetry):
        return EngineConfig.interpreted().with_(telemetry=telemetry)

    def shape(trace):
        skeleton = []
        for span in trace:
            if span.name == "query":
                skeleton.append(("query", span.attributes["relation"]))
            elif span.name == "stratum":
                skeleton.append(("stratum", span.attributes["index"]))
            elif span.name == "iteration":
                skeleton.append(("iteration", span.attributes.get("stratum")))
        return sorted(skeleton)

    assert shape(traced_query(edges, pushdown)) == shape(
        traced_query(edges, serial_vectorized)
    )

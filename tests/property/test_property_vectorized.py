"""Property tests: the vectorized executor equals the pushdown oracle.

The vectorized batch executor's contract is *exact* equivalence: for any
program and any fact base, ``EngineConfig.with_(executor="vectorized")``
computes bit-for-bit the fixpoint of the tuple-at-a-time pushdown executor
— whatever the execution mode (interpreted, JIT, AOT), whatever the shard
count, and also inside an :class:`~repro.incremental.IncrementalSession`
absorbing randomized insert/retract sequences.  The pushdown recursion is
the oracle; any future executor lands against this same harness (see
``tests/README.md``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine
from repro.incremental import IncrementalSession

SHARD_COUNTS = (1, 2, 4)
RULE_SHAPES = ("linear", "nonlinear", "mutual", "filtered", "negated")

edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
    min_size=1,
    max_size=16,
)
mutations_strategy = st.lists(
    st.tuples(
        st.booleans(),  # True = retract (when possible), False = insert
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=10,
)


def build_random_program(edges, rule_shape):
    """One of five rule shapes over the same random edge set.

    ``linear``/``nonlinear``/``mutual`` mirror the shard-parallel property
    suite (aligned pivot, self-join, two-relation stratum); ``filtered``
    adds comparison and assignment literals (batch filter/extend
    operators); ``negated`` adds a stratified anti-join (batch negation).
    """
    program = DatalogProgram(f"prop_vec_{rule_shape}")
    x, y, z, s = (Variable(v) for v in ("x", "y", "z", "s"))
    path = lambda a, b: Atom("path", (a, b))  # noqa: E731
    edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
    hop = lambda a, b: Atom("hop", (a, b))    # noqa: E731
    program.add_rule(path(x, y), [edge(x, y)])
    if rule_shape == "linear":
        program.add_rule(path(x, z), [path(x, y), edge(y, z)])
    elif rule_shape == "nonlinear":
        program.add_rule(path(x, z), [path(x, y), path(y, z)])
    elif rule_shape == "mutual":
        program.add_rule(hop(x, z), [path(x, y), edge(y, z)])
        program.add_rule(path(x, z), [hop(x, y), edge(y, z)])
    elif rule_shape == "filtered":
        program.add_rule(
            path(x, z),
            [path(x, y), edge(y, z), Comparison("!=", x, z)],
        )
        program.add_rule(
            Atom("weight", (x, s)),
            [edge(x, y), Assignment(s, x + y), Comparison("<=", s, 10)],
        )
    else:  # negated: two_hop is a lower stratum for the anti-join
        program.add_rule(hop(x, z), [edge(x, y), edge(y, z)])
        program.add_rule(Atom("skip", (x, z)), [hop(x, z), ~edge(x, z)])
    program.add_facts("edge", sorted(set(edges)))
    return program


def evaluate(program, config):
    return ExecutionEngine(program, config).evaluate()


@pytest.mark.parametrize("rule_shape", RULE_SHAPES)
@settings(max_examples=10, deadline=None)
@given(edges=edges_strategy)
def test_vectorized_matches_pushdown_across_shapes(rule_shape, edges):
    """Interpreted mode: identical relations, rows and deterministic order."""
    program = build_random_program(edges, rule_shape)
    reference = evaluate(program.copy(), EngineConfig.interpreted())
    vectorized = evaluate(
        program.copy(), EngineConfig.interpreted().with_(executor="vectorized")
    )
    assert vectorized == reference, f"{rule_shape} diverged"
    for relation in reference:
        # Bit-for-bit including the deterministic iteration order.
        assert list(vectorized[relation]) == list(reference[relation])


@pytest.mark.parametrize("base", [
    EngineConfig.interpreted(),
    EngineConfig.jit("lambda"),
    EngineConfig.jit("bytecode"),
    EngineConfig.aot(),
], ids=lambda c: c.describe())
@settings(max_examples=6, deadline=None)
@given(edges=edges_strategy)
def test_vectorized_matches_across_modes_and_shards(base, edges):
    """Vectorized x {interpreted, JIT, AOT} x shards {1,2,4} equals the oracle."""
    program = build_random_program(edges, "nonlinear")
    reference = evaluate(program.copy(), EngineConfig.interpreted())
    for shards in SHARD_COUNTS:
        config = EngineConfig.parallel(shards=shards, base=base).with_(
            executor="vectorized"
        )
        assert evaluate(program.copy(), config) == reference, (
            f"{config.describe()} diverged at {shards} shards"
        )


@pytest.mark.parametrize("shards", [1, 2])
@settings(max_examples=6, deadline=None)
@given(edges=edges_strategy, mutations=mutations_strategy)
def test_vectorized_sessions_replay_update_sequences(shards, edges, mutations):
    """Incremental insert/retract sequences under the vectorized executor."""
    edges = [e for e in edges if e[0] != e[1]] or [(0, 1)]
    base = EngineConfig.interpreted().with_(executor="vectorized")
    config = (
        EngineConfig.parallel(shards=shards, base=base) if shards > 1 else base
    )
    with IncrementalSession(build_transitive_closure_program(edges), config) as session:
        live = set(edges)
        for retract, a, b in mutations:
            if retract and live:
                victim = sorted(live)[(a * 8 + b) % len(live)]
                session.retract_facts("edge", [victim])
                live.discard(victim)
            elif a != b:
                session.insert_facts("edge", [(a, b)])
                live.add((a, b))
            else:
                continue
            expected = evaluate(
                build_transitive_closure_program(sorted(live)),
                EngineConfig.interpreted(),
            )["path"]
            assert set(session.fetch("path")) == set(expected)

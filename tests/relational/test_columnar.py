"""Unit tests for ColumnarBlock and the batch (vectorized) operators."""

import pytest

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.terms import Constant, Variable
from repro.relational.columnar import (
    ColumnarBlock,
    build_hash_table,
    choose_build_strategy,
    probe_hash_table,
)
from repro.relational.operators import (
    AtomSource,
    JoinPlan,
    VectorizedSubqueryEvaluator,
    batch_assignment,
    batch_comparison,
    batch_hash_join,
    batch_negation,
    evaluate_subquery,
    project_block,
)
from repro.relational.relation import Relation
from repro.relational.storage import DatabaseKind, StorageManager

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestColumnarBlock:
    def test_unit_and_empty(self):
        unit = ColumnarBlock.unit()
        assert len(unit) == 1
        assert unit.rows() == [()]
        empty = ColumnarBlock.empty((x,))
        assert len(empty) == 0 and not empty
        assert empty.rows() == []
        assert empty.columns == ((),)

    def test_round_trip_between_layouts(self):
        from_rows = ColumnarBlock.from_rows((x, y), [(1, 2), (3, 4)])
        assert from_rows.columns == ((1, 3), (2, 4))
        from_columns = ColumnarBlock.from_columns((x, y), [(1, 3), (2, 4)])
        assert from_columns.rows() == [(1, 2), (3, 4)]
        assert from_rows.column(y) == (2, 4)
        assert from_columns.column_at(0) == (1, 3)

    def test_single_column_extraction_does_not_need_full_transpose(self):
        block = ColumnarBlock.from_rows((x, y, z), [(1, 2, 3), (4, 5, 6)])
        assert block.column(y) == (2, 5)
        assert block.column(y) is block.column(y)  # cached

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            ColumnarBlock.from_columns((x, y), [(1, 2), (3,)])
        with pytest.raises(ValueError):
            ColumnarBlock.from_columns((x,), [(1,), (2,)])

    def test_slot_lookup(self):
        block = ColumnarBlock.from_rows((x, y), [(1, 2)])
        assert block.slot(x) == 0 and block.slot(y) == 1
        assert block.slot(z) is None
        assert block.has(x) and not block.has(z)

    def test_from_relation_and_partition(self):
        relation = Relation("edge", 2)
        relation.insert_many([(i, i + 1) for i in range(8)])
        block = ColumnarBlock.from_relation(relation)
        assert len(block) == 8
        buckets = block.partition(0, 2, hash_fn=lambda v: v)
        assert sorted(r for b in buckets for r in b) == sorted(relation.rows())
        assert all(row[0] % 2 == shard for shard, bucket in enumerate(buckets)
                   for row in bucket)

    def test_to_columns_export(self):
        block = ColumnarBlock.from_rows((x, y), [(1, 2), (3, 4)])
        assert block.to_columns() == {x: (1, 3), y: (2, 4)}


class TestHashPrimitives:
    def test_build_and_probe_single_key(self):
        table = build_hash_table([(1, "a"), (1, "b"), (2, "c")], [0], [1])
        assert table == {1: [("a",), ("b",)], 2: [("c",)]}
        out = probe_hash_table(table, [1, 2, 3], [(10,), (20,), (30,)])
        assert sorted(out) == [(10, "a"), (10, "b"), (20, "c")]

    def test_probe_without_bases_emits_payloads(self):
        table = build_hash_table([(1, "a"), (2, "b")], [0], [1])
        assert sorted(probe_hash_table(table, [2, 2], None)) == [("b",), ("b",)]

    def test_multi_column_keys(self):
        table = build_hash_table([(1, 2, 3)], [0, 1], [2])
        assert table == {(1, 2): [(3,)]}

    def test_choose_build_strategy(self):
        assert choose_build_strategy(10, 1000, indexed=True) == "index"
        assert choose_build_strategy(1000, 1000, indexed=True) == "build"
        assert choose_build_strategy(10, 1000, indexed=False) == "build"


def make_storage():
    storage = StorageManager()
    storage.declare("edge", 2)
    storage.declare("path", 2)
    return storage


class TestBatchOperators:
    def test_join_extends_block(self):
        storage = make_storage()
        edge = storage.derived("edge")
        edge.insert_many([(1, 2), (2, 3), (2, 4)])
        block = ColumnarBlock.from_rows((x, y), [(0, 1), (0, 2)])
        out = batch_hash_join(block, Atom("edge", (y, z)), edge,
                              needed=frozenset({x, y, z}))
        assert out.variables == (x, y, z)
        assert sorted(out.rows()) == [(0, 1, 2), (0, 2, 3), (0, 2, 4)]

    def test_join_prunes_dead_columns(self):
        storage = make_storage()
        edge = storage.derived("edge")
        edge.insert((1, 2))
        block = ColumnarBlock.from_rows((x, y), [(0, 1)])
        out = batch_hash_join(block, Atom("edge", (y, z)), edge,
                              needed=frozenset({x, z}))
        assert out.variables == (x, z)
        assert out.rows() == [(0, 2)]

    def test_join_respects_constants_and_repeated_variables(self):
        storage = make_storage()
        edge = storage.derived("edge")
        edge.insert_many([(1, 1), (1, 2), (2, 2)])
        unit = ColumnarBlock.unit()
        same = batch_hash_join(unit, Atom("edge", (x, x)), edge, frozenset({x}))
        assert sorted(same.rows()) == [(1,), (2,)]
        pinned = batch_hash_join(unit, Atom("edge", (Constant(1), y)), edge,
                                 frozenset({y}))
        assert sorted(pinned.rows()) == [(1,), (2,)]

    def test_join_existence_filter_keeps_or_drops_whole_block(self):
        storage = make_storage()
        edge = storage.derived("edge")
        edge.insert((1, 2))
        block = ColumnarBlock.from_rows((z,), [(7,), (8,)])
        kept = batch_hash_join(block, Atom("edge", (Constant(1), Constant(2))),
                               edge, frozenset({z}))
        assert sorted(kept.rows()) == [(7,), (8,)]
        dropped = batch_hash_join(block, Atom("edge", (Constant(9), Constant(9))),
                                  edge, frozenset({z}))
        assert len(dropped) == 0

    def test_negation_filters_members(self):
        storage = make_storage()
        storage.derived("edge").insert((1, 2))
        block = ColumnarBlock.from_rows((x, y), [(1, 2), (3, 4)])
        out = batch_negation(block, Atom("edge", (x, y), negated=True),
                             storage.derived("edge"))
        assert out.rows() == [(3, 4)]

    def test_negation_requires_bound_variables(self):
        storage = make_storage()
        block = ColumnarBlock.from_rows((x,), [(1,)])
        with pytest.raises(ValueError, match="unbound variable"):
            batch_negation(block, Atom("edge", (x, z), negated=True),
                           storage.derived("edge"))

    def test_comparison_and_assignment(self):
        block = ColumnarBlock.from_rows((x, y), [(1, 2), (5, 2)])
        filtered = batch_comparison(block, Comparison("<", x, y))
        assert filtered.rows() == [(1, 2)]
        extended = batch_assignment(filtered, Assignment(z, x + y))
        assert extended.variables == (x, y, z)
        assert extended.rows() == [(1, 2, 3)]
        # Re-binding an existing variable degenerates to an equality filter.
        rebound = batch_assignment(extended, Assignment(z, Constant(3)))
        assert rebound.rows() == [(1, 2, 3)]
        assert batch_assignment(extended, Assignment(z, Constant(9))).rows() == []

    def test_project_block_shapes(self):
        block = ColumnarBlock.from_rows((x, y), [(1, 2), (3, 4)])
        assert project_block((x, y), block) == {(1, 2), (3, 4)}
        assert project_block((y,), block) == {(2,), (4,)}
        assert project_block((y, x), block) == {(2, 1), (4, 3)}
        assert project_block((x, x + y), block) == {(1, 3), (3, 7)}


class TestVectorizedEvaluator:
    def plan(self):
        return JoinPlan(
            head_relation="path",
            head_terms=(x, z),
            sources=(
                AtomSource(Atom("path", (x, y)), DatabaseKind.DELTA_KNOWN),
                AtomSource(Atom("edge", (y, z)), DatabaseKind.DERIVED),
            ),
        )

    def test_matches_pushdown(self):
        storage = make_storage()
        storage.derived("edge").insert_many([(1, 2), (2, 3), (3, 4)])
        storage.force_delta("path", [(1, 2), (2, 3)])
        reference = evaluate_subquery(storage, self.plan(), executor="pushdown")
        vectorized = evaluate_subquery(storage, self.plan(), executor="vectorized")
        assert vectorized == reference == {(1, 3), (2, 4)}

    def test_stats_count_batches_and_strategies(self):
        storage = make_storage()
        storage.register_index("edge", 0)
        storage.derived("edge").insert_many([(1, 2), (2, 3)])
        storage.force_delta("path", [(1, 2)])
        evaluator = VectorizedSubqueryEvaluator(storage)
        evaluator.evaluate(self.plan())
        assert evaluator.stats["batches"] == 1
        assert evaluator.stats["index"] + evaluator.stats["build"] >= 1

    def test_unknown_executor_rejected(self):
        from repro.relational.operators import SubqueryEvaluator

        with pytest.raises(ValueError, match="unknown executor"):
            SubqueryEvaluator(make_storage(), executor="simd")


class TestPackedColumns:
    def test_from_packed_round_trips(self):
        from array import array

        block = ColumnarBlock.from_packed((x, y), [array("q", [1, 2]), array("q", [3, 4])])
        assert len(block) == 2
        assert block.rows() == [(1, 3), (2, 4)]
        assert list(block.column(x)) == [1, 2]
        assert isinstance(block.packed_column(0), array)

    def test_from_packed_accepts_plain_int_sequences(self):
        block = ColumnarBlock.from_packed((x,), [[5, 6, 7]])
        assert block.rows() == [(5,), (6,), (7,)]

    def test_from_packed_rejects_ragged_and_mismatched(self):
        from array import array

        with pytest.raises(ValueError):
            ColumnarBlock.from_packed((x, y), [array("q", [1]), array("q", [1, 2])])
        with pytest.raises(ValueError):
            ColumnarBlock.from_packed((x,), [array("q", [1]), array("q", [2])])

    def test_packed_column_rejects_non_ints(self):
        block = ColumnarBlock.from_rows((x,), [("a",), ("b",)])
        with pytest.raises(TypeError):
            block.packed_column(0)

    def test_partition_int_fast_path_matches_stable_hash(self):
        from repro.parallel.partition import stable_hash

        rows = [(i * 37 % 19, i) for i in range(64)]
        block = ColumnarBlock.from_rows((x, y), rows)
        fast = block.partition(0, 4, hash_fn=stable_hash)
        # Reference: the generic per-value path (hash_fn without the
        # int_compatible marker never takes the fast path).
        slow = block.partition(0, 4, hash_fn=lambda v: stable_hash(v))
        assert fast == slow

    def test_partition_mixed_values_uses_generic_path(self):
        from repro.parallel.partition import stable_hash

        rows = [("a", 1), ("b", 2), (3, 3)]
        block = ColumnarBlock.from_rows((x, y), rows)
        buckets = block.partition(0, 2, hash_fn=stable_hash)
        assert {row for bucket in buckets for row in bucket} == set(rows)
        for shard, bucket in enumerate(buckets):
            assert all(stable_hash(row[0]) % 2 == shard for row in bucket)

"""Unit tests for the push/pull sub-query evaluators."""

import pytest

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.terms import Constant, Variable
from repro.relational.operators import (
    AtomSource,
    JoinPlan,
    PullSubqueryEvaluator,
    PushSubqueryEvaluator,
    SubqueryEvaluator,
    bound_constraints,
    evaluate_subquery,
    match_atom,
    project_head,
)
from repro.relational.storage import DatabaseKind, StorageManager

x, y, z = Variable("x"), Variable("y"), Variable("z")


def storage_with_graph() -> StorageManager:
    storage = StorageManager()
    storage.declare("edge", 2)
    storage.declare("path", 2)
    storage.declare("blocked", 1)
    for edge in [(1, 2), (2, 3), (3, 4)]:
        storage.insert_derived("edge", edge)
    storage.seed_delta("path", [(1, 2), (2, 3), (3, 4)])
    storage.insert_derived("blocked", (4,))
    return storage


def simple_plan(delta: bool = False) -> JoinPlan:
    """path(x, z) :- path(x, y), edge(y, z)."""
    kind = DatabaseKind.DELTA_KNOWN if delta else DatabaseKind.DERIVED
    return JoinPlan(
        head_relation="path",
        head_terms=(x, z),
        sources=(
            AtomSource(Atom("path", (x, y)), kind),
            AtomSource(Atom("edge", (y, z)), DatabaseKind.DERIVED),
        ),
        rule_name="tc_step",
    )


class TestHelpers:
    def test_match_atom_binds_new_variables(self):
        bindings = match_atom(Atom("edge", (x, y)), (1, 2), {})
        assert bindings == {x: 1, y: 2}

    def test_match_atom_respects_existing_bindings(self):
        assert match_atom(Atom("edge", (x, y)), (1, 2), {x: 1}) == {x: 1, y: 2}
        assert match_atom(Atom("edge", (x, y)), (1, 2), {x: 9}) is None

    def test_match_atom_constant_mismatch(self):
        assert match_atom(Atom("edge", (Constant(5), y)), (1, 2), {}) is None

    def test_match_atom_repeated_variable(self):
        assert match_atom(Atom("loop", (x, x)), (1, 1), {}) == {x: 1}
        assert match_atom(Atom("loop", (x, x)), (1, 2), {}) is None

    def test_bound_constraints(self):
        atom = Atom("r", (x, Constant(7), y))
        assert bound_constraints(atom, {x: 3}) == {0: 3, 1: 7}

    def test_project_head_with_expression(self):
        assert project_head((x, x + 1), {x: 4}) == (4, 5)


class TestJoinPlan:
    def test_describe_marks_delta(self):
        plan = simple_plan(delta=True)
        assert "pathδ" in plan.describe()
        assert "edge*" in plan.describe()

    def test_delta_relation(self):
        assert simple_plan(delta=True).delta_relation() == "path"
        assert simple_plan(delta=False).delta_relation() is None

    def test_reorder(self):
        plan = simple_plan()
        reordered = plan.reorder([1, 0])
        assert reordered.sources[0].literal.relation == "edge"
        with pytest.raises(ValueError):
            plan.reorder([0, 0])


class TestEvaluation:
    @pytest.mark.parametrize("style", ["push", "pull"])
    def test_two_way_join(self, style):
        storage = storage_with_graph()
        result = evaluate_subquery(storage, simple_plan(), style)
        assert result == {(1, 3), (2, 4)}

    @pytest.mark.parametrize("style", ["push", "pull"])
    def test_delta_source_restricts_input(self, style):
        storage = storage_with_graph()
        storage.swap_and_clear(["path"])  # delta becomes empty
        assert evaluate_subquery(storage, simple_plan(delta=True), style) == set()
        assert evaluate_subquery(storage, simple_plan(delta=False), style) == {(1, 3), (2, 4)}

    @pytest.mark.parametrize("style", ["push", "pull"])
    def test_negation_filters(self, style):
        storage = storage_with_graph()
        plan = JoinPlan(
            head_relation="ok",
            head_terms=(y,),
            sources=(
                AtomSource(Atom("edge", (x, y)), DatabaseKind.DERIVED),
                AtomSource(Atom("blocked", (y,), negated=True), None),
            ),
        )
        assert evaluate_subquery(storage, plan, style) == {(2,), (3,)}

    @pytest.mark.parametrize("style", ["push", "pull"])
    def test_comparison_and_assignment(self, style):
        storage = storage_with_graph()
        plan = JoinPlan(
            head_relation="succ",
            head_terms=(x, z),
            sources=(
                AtomSource(Atom("edge", (x, y)), DatabaseKind.DERIVED),
                AtomSource(Comparison("<", x, Constant(3)), None),
                AtomSource(Assignment(z, y * 10), None),
            ),
        )
        assert evaluate_subquery(storage, plan, style) == {(1, 20), (2, 30)}

    @pytest.mark.parametrize("style", ["push", "pull"])
    def test_assignment_to_bound_variable_acts_as_filter(self, style):
        storage = storage_with_graph()
        plan = JoinPlan(
            head_relation="self_loop_next",
            head_terms=(x,),
            sources=(
                AtomSource(Atom("edge", (x, y)), DatabaseKind.DERIVED),
                AtomSource(Assignment(y, x + 1), None),
            ),
        )
        # Every edge in the chain graph satisfies y == x + 1.
        assert evaluate_subquery(storage, plan, style) == {(1,), (2,), (3,)}

    @pytest.mark.parametrize("style", ["push", "pull"])
    def test_constants_in_atoms(self, style):
        storage = storage_with_graph()
        plan = JoinPlan(
            head_relation="from_two",
            head_terms=(y,),
            sources=(AtomSource(Atom("edge", (Constant(2), y)), DatabaseKind.DERIVED),),
        )
        assert evaluate_subquery(storage, plan, style) == {(3,)}

    def test_push_and_pull_agree_on_three_way_join(self):
        storage = storage_with_graph()
        plan = JoinPlan(
            head_relation="two_hop",
            head_terms=(x, z),
            sources=(
                AtomSource(Atom("edge", (x, y)), DatabaseKind.DERIVED),
                AtomSource(Atom("edge", (y, z)), DatabaseKind.DERIVED),
                AtomSource(Atom("path", (x, z)), DatabaseKind.DERIVED),
            ),
        )
        push = PushSubqueryEvaluator(storage).evaluate(plan)
        pull = PullSubqueryEvaluator(storage).evaluate(plan)
        assert push == pull

    def test_negation_with_unbound_variable_raises(self):
        storage = storage_with_graph()
        plan = JoinPlan(
            head_relation="bad",
            head_terms=(x,),
            sources=(
                AtomSource(Atom("blocked", (y,), negated=True), None),
                AtomSource(Atom("edge", (x, y)), DatabaseKind.DERIVED),
            ),
        )
        with pytest.raises((ValueError, KeyError)):
            PullSubqueryEvaluator(storage).evaluate(plan)

    def test_unknown_style_rejected(self):
        storage = storage_with_graph()
        with pytest.raises(ValueError):
            SubqueryEvaluator(storage, "vectorized")

    def test_push_consumer_counts(self):
        storage = storage_with_graph()
        rows = []
        count = PushSubqueryEvaluator(storage).evaluate_into(simple_plan(), rows.append)
        assert count == len(rows) == 2

    def test_indexes_do_not_change_results(self):
        storage = storage_with_graph()
        without = evaluate_subquery(storage, simple_plan())
        storage.register_index("edge", 0)
        storage.register_index("path", 1)
        with_indexes = evaluate_subquery(storage, simple_plan())
        assert without == with_indexes

"""Unit tests for relations and hash indexes."""

import pytest

from repro.relational.relation import HashIndex, Relation


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex(0)
        index.insert((1, "a"))
        index.insert((1, "b"))
        index.insert((2, "c"))
        assert sorted(index.lookup(1)) == [(1, "a"), (1, "b")]
        assert list(index.lookup(3)) == []

    def test_len_and_distinct(self):
        index = HashIndex(1)
        index.insert((1, "a"))
        index.insert((2, "a"))
        index.insert((3, "b"))
        assert len(index) == 3
        assert index.distinct_values() == 2

    def test_clear(self):
        index = HashIndex(0)
        index.insert((1,))
        index.clear()
        assert list(index.lookup(1)) == []


class TestRelation:
    def test_insert_deduplicates(self):
        relation = Relation("edge", 2)
        assert relation.insert((1, 2)) is True
        assert relation.insert((1, 2)) is False
        assert len(relation) == 1

    def test_insert_wrong_arity_rejected(self):
        relation = Relation("edge", 2)
        with pytest.raises(ValueError):
            relation.insert((1, 2, 3))

    def test_insert_many_counts_new_rows(self):
        relation = Relation("edge", 2)
        assert relation.insert_many([(1, 2), (1, 2), (2, 3)]) == 2

    def test_contains_and_iter(self):
        relation = Relation("edge", 2)
        relation.insert((1, 2))
        assert (1, 2) in relation
        assert [4, 5] not in relation
        assert list(relation) == [(1, 2)]

    def test_index_is_maintained_on_insert(self):
        relation = Relation("edge", 2)
        relation.build_index(0)
        relation.insert((1, 2))
        relation.insert((1, 3))
        assert sorted(relation.lookup(0, 1)) == [(1, 2), (1, 3)]

    def test_index_built_over_existing_rows(self):
        relation = Relation("edge", 2)
        relation.insert((1, 2))
        relation.build_index(1)
        assert list(relation.lookup(1, 2)) == [(1, 2)]

    def test_build_index_out_of_range(self):
        relation = Relation("edge", 2)
        with pytest.raises(ValueError):
            relation.build_index(2)

    def test_lookup_without_index_scans(self):
        relation = Relation("edge", 2)
        relation.insert((1, 2))
        relation.insert((3, 2))
        assert sorted(relation.lookup(1, 2)) == [(1, 2), (3, 2)]

    def test_probe_multiple_constraints(self):
        relation = Relation("r", 3)
        relation.build_index(0)
        relation.insert_many([(1, 2, 3), (1, 5, 3), (2, 2, 3)])
        assert sorted(relation.probe({0: 1, 1: 2})) == [(1, 2, 3)]

    def test_probe_prefers_most_selective_index(self):
        relation = Relation("r", 2)
        relation.build_index(0)
        relation.build_index(1)
        relation.insert_many([(1, 9), (1, 8), (2, 9)])
        assert sorted(relation.probe({0: 1, 1: 9})) == [(1, 9)]

    def test_probe_empty_constraints_scans_all(self):
        relation = Relation("r", 1)
        relation.insert_many([(1,), (2,)])
        assert sorted(relation.probe({})) == [(1,), (2,)]

    def test_clear_keeps_indexes_but_empties_them(self):
        relation = Relation("edge", 2)
        relation.build_index(0)
        relation.insert((1, 2))
        relation.clear()
        assert len(relation) == 0
        assert relation.has_index(0)
        assert list(relation.lookup(0, 1)) == []

    def test_absorb_and_difference(self):
        left = Relation("a", 1)
        right = Relation("b", 1)
        left.insert_many([(1,), (2,)])
        right.insert_many([(2,), (3,)])
        target = Relation("diff", 1)
        assert left.difference_into(right, target) == 1
        assert (1,) in target
        assert left.absorb(right) == 1
        assert len(left) == 3

    def test_copy_preserves_rows_and_indexes(self):
        relation = Relation("edge", 2)
        relation.build_index(0)
        relation.insert((1, 2))
        clone = relation.copy("edge2")
        clone.insert((3, 4))
        assert len(relation) == 1
        assert clone.has_index(0)
        assert clone.indexed_columns() == (0,)

    def test_drop_indexes(self):
        relation = Relation("edge", 2)
        relation.build_index(0)
        relation.drop_indexes()
        assert relation.indexed_columns() == ()


class TestInsertManyFastPath:
    def test_tuples_of_correct_arity_take_absorb_set(self):
        relation = Relation("edge", 2)
        relation.build_index(0)
        assert relation.insert_many([(1, 2), (2, 3), (1, 2)]) == 2
        assert len(relation) == 2
        assert sorted(relation.lookup(0, 1)) == [(1, 2)]
        # Re-inserting is a no-op and must not duplicate index buckets.
        assert relation.insert_many({(1, 2), (2, 3)}) == 0
        assert sorted(relation.lookup(0, 2)) == [(2, 3)]

    def test_non_tuple_rows_fall_back_to_per_row_insert(self):
        relation = Relation("edge", 2)
        assert relation.insert_many([[1, 2], (2, 3)]) == 2
        assert (1, 2) in relation

    def test_wrong_arity_still_raises(self):
        relation = Relation("edge", 2)
        with pytest.raises(ValueError, match="arity"):
            relation.insert_many([(1, 2, 3)])
        with pytest.raises(ValueError, match="arity"):
            relation.insert_many([(1, 2), (3,)])

    def test_generator_input(self):
        relation = Relation("edge", 2)
        assert relation.insert_many((i, i + 1) for i in range(5)) == 5


class TestLazyIndexes:
    def test_lazy_index_materialises_on_first_probe(self):
        relation = Relation("edge", 2)
        assert relation.build_index(0, lazy=True) is None
        assert relation.has_index(0)            # registered...
        assert relation.indexed_columns() == () # ...but not yet materialised
        relation.insert_many([(1, 2), (1, 3), (2, 4)])
        assert relation.index_buckets(0) is None
        assert sorted(relation.lookup(0, 1)) == [(1, 2), (1, 3)]  # materialises
        assert relation.indexed_columns() == (0,)
        assert relation.index_buckets(0) is not None

    def test_clear_demotes_lazy_indexes_only(self):
        relation = Relation("edge", 2)
        relation.build_index(0, lazy=True)
        relation.build_index(1)  # eager
        relation.insert((1, 2))
        list(relation.lookup(0, 1))  # materialise the lazy one
        assert relation.indexed_columns() == (0, 1)
        relation.clear()
        assert relation.indexed_columns() == (1,)  # lazy demoted, eager kept
        relation.insert((3, 4))
        assert sorted(relation.lookup(0, 3)) == [(3, 4)]  # re-materialises

    def test_probe_uses_lazily_materialised_index(self):
        relation = Relation("edge", 2)
        relation.build_index(1, lazy=True)
        relation.insert_many([(1, 2), (3, 2), (4, 5)])
        assert sorted(relation.probe({1: 2})) == [(1, 2), (3, 2)]
        assert relation.indexed_columns() == (1,)

    def test_copy_preserves_lazy_registration(self):
        relation = Relation("edge", 2)
        relation.build_index(0, lazy=True)
        clone = relation.copy()
        clone.insert((1, 2))
        assert clone.has_index(0)
        assert sorted(clone.lookup(0, 1)) == [(1, 2)]

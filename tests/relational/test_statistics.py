"""Unit tests for cardinality statistics and the selectivity model."""

import pytest

from repro.relational.statistics import (
    SnapshotCache,
    CardinalitySnapshot,
    SelectivityModel,
    StatisticsCollector,
    take_snapshot,
)
from repro.relational.storage import DatabaseKind, StorageManager


def make_storage() -> StorageManager:
    storage = StorageManager()
    storage.declare("a", 1)
    storage.declare("b", 1)
    storage.insert_derived("a", (1,))
    storage.insert_derived("a", (2,))
    storage.seed_delta("b", [(1,)])
    return storage


class TestSnapshot:
    def test_take_snapshot_counts(self):
        snapshot = take_snapshot(make_storage(), iteration=3)
        assert snapshot.iteration == 3
        assert snapshot.of("a", DatabaseKind.DERIVED) == 2
        assert snapshot.of("b", DatabaseKind.DELTA_KNOWN) == 1
        assert snapshot.total_derived() == 3
        assert snapshot.total_delta() == 1

    def test_missing_relation_counts_zero(self):
        snapshot = CardinalitySnapshot(0, {"a": 1}, {})
        assert snapshot.of("unknown", DatabaseKind.DERIVED) == 0


class TestSelectivityModel:
    def test_output_cardinality_reduction(self):
        model = SelectivityModel(reduction_factor=0.1)
        assert model.output_cardinality(1000, 0) == 1000
        assert model.output_cardinality(1000, 1) == pytest.approx(100)
        assert model.output_cardinality(1000, 2) == pytest.approx(10)

    def test_access_cost_penalises_cartesian(self):
        model = SelectivityModel(cartesian_penalty=10.0)
        assert model.access_cost(100, 0, indexed=False) == 1000
        assert model.access_cost(100, 1, indexed=False) == 100

    def test_access_cost_rewards_index(self):
        model = SelectivityModel(index_benefit=0.05)
        assert model.access_cost(100, 1, indexed=True) == pytest.approx(5)

    def test_join_cost_scales_with_intermediate(self):
        model = SelectivityModel()
        small = model.join_cost(10, 100, 1, indexed=False)
        large = model.join_cost(1000, 100, 1, indexed=False)
        assert large > small


class TestStatisticsCollector:
    def test_record_and_series(self):
        storage = make_storage()
        collector = StatisticsCollector()
        collector.record(storage, 1)
        storage.insert_derived("a", (3,))
        collector.record(storage, 2)
        assert collector.iterations() == 2
        assert collector.series("a") == [2, 3]
        assert collector.latest().iteration == 2

    def test_latest_on_empty_collector(self):
        assert StatisticsCollector().latest() is None

    def test_relative_change(self):
        collector = StatisticsCollector()
        before = CardinalitySnapshot(1, {"a": 100, "b": 10}, {"a": 5, "b": 1})
        unchanged = CardinalitySnapshot(2, {"a": 100, "b": 10}, {"a": 5, "b": 1})
        doubled = CardinalitySnapshot(2, {"a": 200, "b": 10}, {"a": 5, "b": 1})
        assert collector.relative_change(before, unchanged) == 0.0
        assert collector.relative_change(before, doubled) == pytest.approx(1.0)

    def test_relative_change_handles_zero_baseline(self):
        collector = StatisticsCollector()
        before = CardinalitySnapshot(1, {"a": 0}, {"a": 0})
        after = CardinalitySnapshot(2, {"a": 3}, {"a": 3})
        assert collector.relative_change(before, after) == pytest.approx(3.0)


class TestSnapshotCache:
    def test_reuses_maps_while_storage_is_unchanged(self):
        storage = make_storage()
        cache = SnapshotCache()
        first = cache.take(storage, 1)
        again = cache.take(storage, 1)
        assert again is first
        relabelled = cache.take(storage, 2)
        assert relabelled is not first
        assert relabelled.iteration == 2
        # The cardinality maps themselves are shared, not re-copied.
        assert relabelled.derived is first.derived
        assert relabelled.delta is first.delta

    def test_refreshes_after_a_visible_mutation(self):
        storage = make_storage()
        cache = SnapshotCache()
        first = cache.take(storage, 1)
        storage.insert_derived("a", (99,))
        second = cache.take(storage, 1)
        assert second is not first
        assert second.of("a", DatabaseKind.DERIVED) == first.of("a", DatabaseKind.DERIVED) + 1

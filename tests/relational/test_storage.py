"""Unit tests for the storage manager (Derived / Delta-Known / Delta-New)."""

import pytest

from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.relational.storage import DatabaseKind, StorageManager

x, y = Variable("x"), Variable("y")


def make_storage() -> StorageManager:
    storage = StorageManager()
    storage.declare("edge", 2)
    storage.declare("path", 2)
    return storage


class TestDeclaration:
    def test_declare_idempotent(self):
        storage = make_storage()
        storage.declare("edge", 2)
        assert storage.arity_of("edge") == 2

    def test_declare_conflicting_arity(self):
        storage = make_storage()
        with pytest.raises(ValueError):
            storage.declare("edge", 3)

    def test_unknown_relation_rejected(self):
        storage = make_storage()
        with pytest.raises(KeyError):
            storage.relation("unknown")

    def test_load_program_loads_facts(self):
        program = DatalogProgram()
        program.add_facts("edge", [(1, 2), (2, 3)])
        program.add_rule(Atom("path", (x, y)), [Atom("edge", (x, y))])
        storage = StorageManager(program)
        assert storage.cardinality("edge") == 2
        assert storage.cardinality("path") == 0


class TestDeltaLifecycle:
    def test_seed_delta_populates_derived_and_known(self):
        storage = make_storage()
        added = storage.seed_delta("path", [(1, 2), (1, 2), (2, 3)])
        assert added == 2
        assert storage.cardinality("path", DatabaseKind.DERIVED) == 2
        assert storage.cardinality("path", DatabaseKind.DELTA_KNOWN) == 2

    def test_insert_new_dedups_against_derived(self):
        storage = make_storage()
        storage.seed_delta("path", [(1, 2)])
        assert storage.insert_new("path", (1, 2)) is False
        assert storage.insert_new("path", (2, 3)) is True
        assert storage.cardinality("path", DatabaseKind.DELTA_NEW) == 1

    def test_swap_and_clear_promotes_and_rotates(self):
        storage = make_storage()
        storage.seed_delta("path", [(1, 2)])
        storage.insert_new("path", (2, 3))
        promoted = storage.swap_and_clear(["path"])
        assert promoted == 1
        assert storage.cardinality("path", DatabaseKind.DERIVED) == 2
        assert storage.tuples("path", DatabaseKind.DELTA_KNOWN) == {(2, 3)}
        assert storage.cardinality("path", DatabaseKind.DELTA_NEW) == 0

    def test_swap_with_no_new_facts_returns_zero(self):
        storage = make_storage()
        storage.seed_delta("path", [(1, 2)])
        storage.swap_and_clear(["path"])
        assert storage.swap_and_clear(["path"]) == 0

    def test_new_fact_count(self):
        storage = make_storage()
        storage.insert_new_many("path", [(1, 2), (2, 3)])
        assert storage.new_fact_count(["path"]) == 2

    def test_reset_idb(self):
        storage = make_storage()
        storage.seed_delta("path", [(1, 2)])
        storage.reset_idb(["path"])
        assert storage.cardinality("path") == 0

    def test_clear_deltas(self):
        storage = make_storage()
        storage.seed_delta("path", [(1, 2)])
        storage.clear_deltas(["path"])
        assert storage.cardinality("path", DatabaseKind.DELTA_KNOWN) == 0
        assert storage.cardinality("path", DatabaseKind.DERIVED) == 1


class TestIndexes:
    def test_register_index_applies_to_all_copies(self):
        storage = make_storage()
        storage.register_index("path", 0)
        assert storage.registered_indexes("path") == (0,)
        for kind in DatabaseKind:
            assert storage.relation("path", kind).has_index(0)

    def test_indexes_survive_swap(self):
        storage = make_storage()
        storage.register_index("path", 1)
        storage.seed_delta("path", [(1, 2)])
        storage.insert_new("path", (2, 3))
        storage.swap_and_clear(["path"])
        delta = storage.relation("path", DatabaseKind.DELTA_KNOWN)
        assert list(delta.lookup(1, 3)) == [(2, 3)]

    def test_drop_all_indexes(self):
        storage = make_storage()
        storage.register_index("path", 0)
        storage.drop_all_indexes()
        assert storage.registered_indexes("path") == ()


class TestSnapshots:
    def test_cardinalities_and_snapshot(self):
        storage = make_storage()
        storage.insert_derived("edge", (1, 2))
        storage.seed_delta("path", [(1, 2), (2, 3)])
        cards = storage.cardinalities()
        assert cards == {"edge": 1, "path": 2}
        snapshot = storage.snapshot()
        assert snapshot["path"]["delta"] == 2
        assert snapshot["edge"]["derived"] == 1


class TestBatchWriterNormalisation:
    def test_batch_writers_reject_wrong_arity(self):
        storage = make_storage()
        for method in ("seed_delta", "insert_new_many"):
            with pytest.raises(ValueError, match="arity"):
                getattr(storage, method)("path", [(1, 2, 3)])

    def test_sets_of_non_tuple_sequences_are_tupled(self):
        storage = make_storage()
        storage.seed_delta("path", {"ab"})  # a set of 2-char strings
        assert ("a", "b") in storage.derived("path")
        storage.insert_new_many("path", {"cd"})
        assert ("c", "d") in storage.new("path")


class TestTrustedBatchSinks:
    """insert_new_batch / seed_delta_batch: the executor's validated sinks."""

    def _storage(self):
        storage = StorageManager()
        storage.declare("edge", 2)
        return storage

    def test_insert_new_batch_matches_insert_new_many(self):
        a, b = self._storage(), self._storage()
        a.insert_derived("edge", (1, 2))
        b.insert_derived("edge", (1, 2))
        batch = {(1, 2), (3, 4), (5, 6)}
        assert a.insert_new_batch("edge", batch) == b.insert_new_many("edge", batch) == 2
        assert a.tuples("edge", DatabaseKind.DELTA_NEW) == b.tuples(
            "edge", DatabaseKind.DELTA_NEW
        )

    def test_seed_delta_batch_matches_seed_delta(self):
        a, b = self._storage(), self._storage()
        batch = {(1, 2), (3, 4)}
        assert a.seed_delta_batch("edge", batch) == b.seed_delta("edge", batch) == 2
        assert a.tuples("edge") == b.tuples("edge")
        assert a.tuples("edge", DatabaseKind.DELTA_KNOWN) == b.tuples(
            "edge", DatabaseKind.DELTA_KNOWN
        )

    def test_mutation_version_moves_with_visible_changes(self):
        storage = self._storage()
        before = storage.mutation_version()
        storage.seed_delta_batch("edge", {(1, 2)})
        assert storage.mutation_version() > before
        version = storage.mutation_version()
        # Delta-New writes are invisible to cardinality snapshots.
        storage.insert_new_batch("edge", {(7, 8)})
        assert storage.mutation_version() == version
        storage.swap_and_clear(["edge"])
        assert storage.mutation_version() > version

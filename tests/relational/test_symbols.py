"""Unit tests for the global symbol table (dictionary-encoded storage)."""

import pickle
import threading

import pytest

from repro.relational.storage import StorageManager
from repro.relational.symbols import IDENTITY, IdentitySymbols, SymbolTable


class TestRoundTrips:
    def test_mixed_type_round_trip(self):
        table = SymbolTable()
        values = ["alice", 17, 3.25, ("pkg", "sym", 4), b"bytes", None, "alice"]
        ids = [table.intern(v) for v in values]
        assert [table.resolve(i) for i in ids] == values
        # Dense: ids are exactly 0..N-1 in first-seen order.
        assert sorted(set(ids)) == list(range(len(set(ids))))

    def test_equal_values_share_one_id_like_a_raw_set_would(self):
        # Interning preserves Python set semantics: 1 == 1.0 == True
        # collapse to one id, exactly as a raw set of rows collapses them,
        # so decoded results equal the raw engine's under == (same rows,
        # same cardinalities).  Distinct ids per type would instead make
        # encoded relations hold MORE rows than their raw counterparts.
        table = SymbolTable()
        assert table.intern(1) == table.intern(1.0) == table.intern(True)
        assert table.intern("a") != table.intern("b")
        assert len(table) == 3

    def test_mixed_type_equivalence_classes_decode_to_the_first_seen_value(self):
        # Deliberate, documented behaviour (see the module docstring): the
        # table keeps the globally first-interned representative of a
        # mixed-type numeric ==-class, so a relation loaded later may decode
        # 1.0 as 1.  The raw engine has the same arbitrariness per set
        # (first value inserted wins); only the tie-break scope differs.
        table = SymbolTable()
        first = table.intern(1)
        assert table.resolve(table.intern(1.0)) is table.resolve(first)
        assert type(table.resolve(table.intern(1.0))) is int

    def test_id_stability_under_reinsert(self):
        table = SymbolTable()
        first = table.intern("x")
        for _ in range(3):
            assert table.intern("x") == first
        assert table.intern("y") == first + 1
        assert table.intern("x") == first
        assert len(table) == 2

    def test_row_codecs(self):
        table = SymbolTable()
        rows = [("a", 1), ("b", 2), ("a", 2)]
        encoded = table.intern_rows(rows)
        assert all(isinstance(v, int) for row in encoded for v in row)
        assert table.resolve_rows(encoded) == rows
        assert table.lookup_row(("a", 2)) == encoded[2]
        assert table.lookup_row(("a", "never-seen")) is None
        assert table.rows_encoded == 3 and table.rows_decoded == 3

    def test_resolve_unknown_id_raises(self):
        table = SymbolTable()
        table.intern("only")
        with pytest.raises(KeyError):
            table.resolve(99)


class TestShardPlumbing:
    def test_pickle_round_trip_preserves_ids(self):
        # The shard-worker boundary: a pickled table must decode and intern
        # exactly like the original (the lock is rebuilt on load).
        table = SymbolTable()
        ids = [table.intern(v) for v in ("a", ("b", 1), 2.5)]
        clone = pickle.loads(pickle.dumps(table))
        assert [clone.resolve(i) for i in ids] == ["a", ("b", 1), 2.5]
        assert clone.intern(("b", 1)) == ids[1]       # existing id stable
        assert clone.intern("fresh") == len(table)    # allocation continues

    def test_entries_since_and_extend_replay_identically(self):
        sender = SymbolTable()
        receiver = pickle.loads(pickle.dumps(sender))
        sender.intern_rows([("a", "b"), ("c", "a")])
        mark = receiver.mark()
        assert receiver.extend(sender.entries_since(mark), base=mark) == 3
        assert receiver.lookup("c") == sender.lookup("c")
        assert len(receiver) == len(sender)

    def test_extend_rejects_divergent_tables(self):
        a = SymbolTable()
        b = SymbolTable()
        a.intern("x")
        b.intern("y")
        b.intern("x")  # different id for "x"
        with pytest.raises(ValueError):
            a.extend(b.entries_since(0), base=0)

    def test_extend_rejects_base_beyond_the_table_size(self):
        # A delta whose base disagrees with the receiver's current size
        # means entries are missing in between: replaying it would hand the
        # batch ids the sender never assigned.  It must raise — a silent
        # misalignment would remap every fact interned afterwards.
        table = SymbolTable(["a", "b"])
        with pytest.raises(ValueError, match="beyond this table's size"):
            table.extend(["c", "d"], base=5)
        assert list(table.values()) == ["a", "b"]

    def test_extend_rejects_stale_base_with_new_values(self):
        table = SymbolTable(["a", "b", "c"])
        with pytest.raises(ValueError, match="divergence"):
            table.extend(["x"], base=1)  # id 1 is already "b"
        assert list(table.values()) == ["a", "b", "c"]

    def test_duplicated_delta_replay_dedupe_merges(self):
        # Replaying the same WAL symbol delta twice (crash between append
        # and ack, record rewritten) must be idempotent: matching entries
        # are skipped, nothing new is allocated.
        table = SymbolTable(["a"])
        assert table.extend(["b", "c"], base=1) == 2
        assert table.extend(["b", "c"], base=1) == 0
        assert list(table.values()) == ["a", "b", "c"]
        # A partially overlapping replay extends only the genuine tail.
        assert table.extend(["c", "d"], base=2) == 1
        assert table.lookup("d") == 3

    def test_failed_extend_is_atomic(self):
        # The second entry diverges; the first must NOT survive — a
        # partially absorbed delta silently shifts every later allocation.
        table = SymbolTable(["a"])
        with pytest.raises(ValueError):
            table.extend(["b", "a"], base=1)  # "a" is bound to 0, not 2
        assert list(table.values()) == ["a"]
        assert table.lookup("b") is None

    def test_extend_rejects_in_batch_duplicates(self):
        # A sender's appended suffix can never repeat a value (interning is
        # a bijection), so a duplicate marks a corrupt delta — and must not
        # half-apply.
        table = SymbolTable()
        with pytest.raises(ValueError):
            table.extend(["x", "x"], base=0)
        assert len(table) == 0

    def test_concurrent_interning_from_a_thread_pool(self):
        table = SymbolTable()
        values = [f"sym_{i}" for i in range(200)]
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append([table.intern(v) for v in values])

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every thread observed the same value -> id mapping, the table is
        # dense, and decode round-trips.
        assert all(ids == seen[0] for ids in seen)
        assert len(table) == len(values)
        assert [table.resolve(i) for i in seen[0]] == values


class TestIdentityCodec:
    def test_identity_passthrough(self):
        assert IDENTITY.identity is True
        assert IDENTITY.intern("v") == "v"
        assert IDENTITY.resolve(("a", 1)) == ("a", 1)
        assert IDENTITY.intern_row(["a", 1]) == ("a", 1)
        assert IDENTITY.resolve_rows([("a",)]) == [("a",)]
        assert IDENTITY.lookup_row(["a"]) == ("a",)
        assert len(IDENTITY) == 0 and IDENTITY.entries_since(0) == []
        with pytest.raises(TypeError):
            IDENTITY.extend(["x"])

    def test_bare_storage_defaults_to_identity(self):
        storage = StorageManager()
        assert isinstance(storage.symbols, IdentitySymbols)
        storage.declare("r", 1)
        storage.insert_derived("r", ("raw",))
        assert storage.tuples("r") == {("raw",)}
        assert storage.decoded_tuples("r") == {("raw",)}

    def test_storage_with_table_interns_program_facts(self):
        from repro.datalog.program import DatalogProgram

        program = DatalogProgram("p")
        program.declare_relation("edge", 2)
        program.add_fact("edge", ("a", "b"))
        program.add_fact("edge", ("b", "c"))
        storage = StorageManager(program, symbols=SymbolTable())
        stored = storage.tuples("edge")
        assert all(isinstance(v, int) for row in stored for v in row)
        assert storage.decoded_tuples("edge") == {("a", "b"), ("b", "c")}
        assert len(storage.symbols) == 3  # "a", "b", "c" interned once each

"""Concurrency stress tests for storage counters and the result cache.

The serving layer reads storage counters (``generations``/
``mutation_version``) and probes the shared :class:`ResultCache` from
reader threads while a single writer mutates — these tests hammer exactly
those paths.  Row mutation itself stays single-writer by design; what must
be thread-safe is the counter bookkeeping and the cache's dict surgery.
"""

import threading

from repro.incremental import ResultCache
from repro.relational.storage import StorageManager

WRITER_BATCHES = 400
READER_ITERATIONS = 2_000
THREADS = 4


def two_relation_storage():
    storage = StorageManager()
    storage.declare("a", 2)
    storage.declare("b", 2)
    return storage


class TestStorageCounters:
    def test_concurrent_version_bumps_never_lose_an_increment(self):
        # force_delta bumps the mutation version once per call; with the
        # counter unlocked, racing += would drop increments.
        storage = two_relation_storage()
        start = storage.mutation_version()

        def hammer(thread_id, name):
            for i in range(WRITER_BATCHES):
                storage.force_delta(name, [(thread_id, i)])

        threads = [
            threading.Thread(target=hammer, args=(t, "a" if t % 2 else "b"))
            for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert storage.mutation_version() == start + THREADS * WRITER_BATCHES

    def test_counter_snapshots_are_never_torn_across_relations(self):
        # One writer bumps a then b in lockstep, so any consistent snapshot
        # satisfies 0 <= gen(a) - gen(b) <= 1; a torn multi-relation read
        # could observe b ahead of a.
        storage = two_relation_storage()
        base_a = storage.generation("a")
        base_b = storage.generation("b")
        stop = threading.Event()
        violations = []

        def writer():
            for i in range(WRITER_BATCHES):
                storage.absorb_rows("a", [(i, i)])
                storage.absorb_rows("b", [(i, i)])
            stop.set()

        def reader():
            while not stop.is_set():
                snapshot = storage.generations(["a", "b"])
                ahead = (snapshot["a"] - base_a) - (snapshot["b"] - base_b)
                if not 0 <= ahead <= 1:
                    violations.append(snapshot)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not violations, f"torn generation snapshots: {violations[:3]}"
        assert storage.generation("a") == base_a + WRITER_BATCHES
        assert storage.generation("b") == base_b + WRITER_BATCHES

    def test_monotonic_mutation_version_under_concurrent_reads(self):
        storage = two_relation_storage()
        stop = threading.Event()
        regressions = []

        def writer():
            for i in range(WRITER_BATCHES):
                storage.absorb_rows("a", [(i, -i)])
            stop.set()

        def reader():
            last = storage.mutation_version()
            while not stop.is_set():
                current = storage.mutation_version()
                if current < last:
                    regressions.append((last, current))
                last = current

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not regressions


class TestResultCacheConcurrency:
    def test_concurrent_store_lookup_accounting_stays_consistent(self):
        cache = ResultCache(max_entries=8)  # small: force eviction races
        generations = {"edge": 1}
        lookups_per_thread = READER_ITERATIONS
        errors = []

        def worker(thread_id):
            try:
                for i in range(lookups_per_thread):
                    key = ("prog", "config", f"rel{i % 12}")
                    rows = cache.lookup(key, generations)
                    if rows is None:
                        cache.store(
                            key, generations, frozenset({(thread_id, i)})
                        )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        stats = cache.stats
        assert stats.hits + stats.misses == THREADS * lookups_per_thread
        assert len(cache) <= 8

    def test_concurrent_invalidation_and_lookup(self):
        cache = ResultCache(max_entries=64)
        stop = threading.Event()
        errors = []

        def churner():
            version = 0
            try:
                while not stop.is_set():
                    version += 1
                    cache.store(
                        ("p", "c", "path"), {"edge": version}, frozenset()
                    )
                    cache.invalidate_relation("path")
            except Exception as exc:
                errors.append(exc)

        def prober():
            try:
                for version in range(READER_ITERATIONS):
                    cache.lookup(("p", "c", "path"), {"edge": version})
            except Exception as exc:
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=churner),
            threading.Thread(target=prober),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

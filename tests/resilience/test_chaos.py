"""Chaos property suite: a fault at every point leaves the system usable.

For every registered fault point, a representative durable workload runs
with that point scheduled to fail once (``fail_nth=1``).  The property:

* every surfaced failure is a *typed* taxonomy error (never a bare
  ``OSError``/``RuntimeError`` leaking out of the middle of a subsystem),
* one retry after the injected failure succeeds (the schedule recovers),
* the final state is bit-for-bit equal to a never-faulted oracle — across
  both executors and shard counts, including a durable restart.

The wire-side points (``server.send``, ``queue.enqueue``) run the same
property through a real TCP server and a retrying client.
"""

import pytest

from repro import Database, DurabilityConfig, EngineConfig
from repro.analyses.micro import build_transitive_closure_program
from repro.resilience.errors import ResilienceError, TAXONOMY
from repro.resilience.faults import fault_scope
from repro.server import BlockingClient, ServerThread
from repro.server.client import RetryPolicy, ServerError

#: String nodes: every mutation carries symbol deltas through the WAL, so
#: the durable replay path (and its ``symbols.extend`` fault point) is live.
SEED_EDGES = [("a", "b"), ("b", "c")]
BATCH_1 = [("c", "d"), ("d", "e")]
RETRACT = [("b", "c")]
BATCH_2 = [("b", "e"), ("e", "f")]

#: The engine-side fault points (the wire points get their own server test).
ENGINE_POINTS = (
    "wal.append",
    "wal.fsync",
    "checkpoint.rename",
    "symbols.extend",
    "pool.invoke",
)

CONFIG_GRID = [
    pytest.param(executor, shards, id=f"{executor}-shards{shards}")
    for executor in ("pushdown", "vectorized")
    for shards in (1, 4)
]


def make_config(executor: str, shards: int) -> EngineConfig:
    config = EngineConfig(executor=executor)
    if shards > 1:
        config = EngineConfig.parallel(shards=shards, base=config)
    return config


def run_workload(config, durability_dir, aborted=None):
    """Insert/query/retract/checkpoint/restart; return the final closure.

    Each step tolerates exactly one typed failure and retries: ``fail_nth``
    schedules recover after firing, so the retry exercises the system's
    post-fault health, and set semantics make every step idempotent.
    """

    def guard(op):
        try:
            return op()
        except ResilienceError as error:
            if aborted is None:
                raise
            aborted.append(error)
            return op()

    durability = DurabilityConfig(dir=str(durability_dir), fsync="always")
    program = build_transitive_closure_program(SEED_EDGES)
    database = guard(lambda: Database(program, config, durability=durability))
    try:
        with database.connect() as conn:
            guard(lambda: conn.insert_facts("edge", BATCH_1))
            guard(lambda: conn.query("path").rows())
            guard(lambda: conn.retract_facts("edge", RETRACT))
            guard(lambda: conn.insert_facts("edge", BATCH_2))
            guard(lambda: conn.checkpoint())
    finally:
        database.close()

    # A durable restart replays the WAL (symbol deltas included).  The
    # recovery itself runs when the durable-writer connection opens, so the
    # connect is inside the guard: an injected replay failure must surface
    # typed and succeed on retry.
    reopened = Database(program, config, durability=durability)
    try:
        with guard(reopened.connect) as conn:
            return set(guard(lambda: conn.query("path").rows()))
    finally:
        reopened.close()


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    return run_workload(
        EngineConfig.interpreted(), tmp_path_factory.mktemp("oracle")
    )


class TestEnginePoints:
    @pytest.mark.parametrize("executor,shards", CONFIG_GRID)
    def test_never_faulted_runs_agree_across_configurations(
        self, executor, shards, tmp_path, oracle
    ):
        assert run_workload(make_config(executor, shards), tmp_path) == oracle

    @pytest.mark.parametrize("point", ENGINE_POINTS)
    @pytest.mark.parametrize("executor,shards", CONFIG_GRID)
    def test_one_injected_fault_never_costs_the_answer(
        self, point, executor, shards, tmp_path, oracle
    ):
        aborted = []
        with fault_scope(f"{point}:fail_nth=1") as registry:
            final = run_workload(
                make_config(executor, shards), tmp_path, aborted
            )
            fired = registry.injected(point)
        assert final == oracle
        # Whatever surfaced was typed — and each fires at most once.
        assert len(aborted) == fired <= 1
        for error in aborted:
            assert isinstance(error, ResilienceError)
            assert error.code in TAXONOMY
            assert error.reason == "injected"

    @pytest.mark.parametrize("executor,shards", CONFIG_GRID)
    def test_durability_points_actually_fire(self, executor, shards, tmp_path):
        """Guard against silently-vacuous chaos: the workload must hit the
        WAL points on every configuration (sharding has its own hits test
        in the degradation suite)."""
        with fault_scope() as registry:  # passive: count hits, fail nothing
            run_workload(make_config(executor, shards), tmp_path)
            assert registry.hits("wal.append") > 0
            assert registry.hits("wal.fsync") > 0
            assert registry.hits("checkpoint.rename") > 0
            assert registry.hits("symbols.extend") > 0


class TestWirePoints:
    def _served(self):
        database = Database(build_transitive_closure_program([(1, 2), (2, 3)]))
        return database, ServerThread(database)

    def test_queue_enqueue_fault_is_typed_and_retryable(self):
        database, thread = self._served()
        with thread:
            with fault_scope("queue.enqueue:fail_nth=1"):
                with BlockingClient(thread.host, thread.port) as client:
                    with pytest.raises(ServerError) as excinfo:
                        client.insert("edge", [(3, 4)])
                    # The taxonomy code and the admission flag make the
                    # retry decision mechanical.
                    assert excinfo.value.error["code"] == "resource_exhausted"
                    assert excinfo.value.enqueued is False
                    client.insert("edge", [(3, 4)])  # point recovered
                    assert (1, 4) in set(client.query("path"))
        database.close()

    def test_queue_enqueue_fault_is_absorbed_by_a_retry_policy(self):
        database, thread = self._served()
        with thread:
            with fault_scope("queue.enqueue:fail_nth=1"):
                client = BlockingClient(
                    thread.host, thread.port,
                    retry=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
                )
                with client:
                    client.insert("edge", [(3, 4)])  # retried internally
                    assert (1, 4) in set(client.query("path"))
        database.close()

    def test_server_send_fault_drops_the_connection_not_the_server(self):
        database, thread = self._served()
        with thread:
            with fault_scope("server.send:fail_nth=1"):
                client = BlockingClient(
                    thread.host, thread.port,
                    retry=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
                )
                with client:
                    # The first response write dies; the retrying client
                    # reconnects and the query still comes back correct.
                    assert (1, 3) in set(client.query("path"))
            # And the server is fully healthy for fresh connections.
            with BlockingClient(thread.host, thread.port) as fresh:
                assert fresh.ping()
        database.close()

"""Graceful degradation: dead shard workers cost latency, never the answer.

Three layers of the same guarantee:

* :class:`ForkWorkerPool` detects a SIGKILL'd child, reaps it (no zombies,
  no leaked processes — even against a SIGTERM-ignoring child) and raises a
  typed :class:`WorkerFailed`;
* the :class:`ParallelEvaluator` catches that error, rebuilds the stratum
  from the still-pristine global storage and re-drives it on the next-safer
  pool kind (process -> thread -> serial);
* the incremental session recovers a failed shard propagation with a full
  recompute from base facts (a partial absorb could MISS derivations).
"""

import os
import signal
import time

import pytest

from repro import Database, EngineConfig
from repro.analyses.micro import build_transitive_closure_program
from repro.engine.engine import ExecutionEngine
from repro.parallel.executor import ForkWorkerPool, fork_available
from repro.resilience.errors import WorkerFailed
from repro.resilience.faults import fault_scope

EDGES = [(1, 2), (2, 3), (3, 4), (4, 5), (2, 5), (5, 6)]

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def reference():
    engine = ExecutionEngine(
        build_transitive_closure_program(EDGES), EngineConfig.interpreted()
    )
    return engine.evaluate()["path"]


class _Echo:
    def echo(self, value):
        return value


class _Wedger:
    def wedge(self):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(60)


@needs_fork
class TestForkPoolReaping:
    def test_sigkilled_child_surfaces_as_worker_failed_and_is_reaped(self):
        pool = ForkWorkerPool([_Echo(), _Echo()])
        try:
            assert pool.invoke("echo", [(1,), (2,)]) == [1, 2]
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            with pytest.raises(WorkerFailed) as excinfo:
                pool.invoke("echo", [(3,), (4,)])
            assert excinfo.value.details["shard"] == 0
            assert excinfo.value.code == "worker_failed"
            # The corpse was collected inside invoke — no zombie waits for
            # close().
            assert not pool._processes[0].is_alive()
        finally:
            pool.close()
        assert all(not process.is_alive() for process in pool._processes)

    def test_close_reaps_a_sigterm_ignoring_wedged_child(self):
        # Pin for a real leak: close() used to stop at join(timeout) and
        # silently leave the child running.  A child that is both wedged
        # (never reads __stop__) and SIGTERM-immune must still die via the
        # terminate -> kill escalation, bounded by join_timeout.
        pool = ForkWorkerPool([_Wedger()], join_timeout=0.2)
        pool._connections[0].send(("wedge", ()))
        time.sleep(0.3)  # let the child enter wedge() and swap its handler
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 3.0
        assert not pool._processes[0].is_alive()

    def test_close_is_idempotent_after_a_failure(self):
        pool = ForkWorkerPool([_Echo()])
        os.kill(pool._processes[0].pid, signal.SIGKILL)
        with pytest.raises(WorkerFailed):
            pool.invoke("echo", [(1,)])
        pool.close()
        pool.close()
        assert not pool._processes[0].is_alive()


class TestStratumDegradation:
    @needs_fork
    def test_sigkilled_shard_worker_degrades_stratum_with_correct_answer(
        self, monkeypatch, reference
    ):
        import repro.parallel.executor as parallel_executor

        real_make_pool = parallel_executor.make_pool
        killed = []

        def killing_make_pool(kind, workers):
            pool = real_make_pool(kind, workers)
            if kind == "process" and not killed:
                # Murder shard 0 right after the fork: the first invoke
                # finds a dead pipe and must degrade, not wedge or crash.
                os.kill(pool._processes[0].pid, signal.SIGKILL)
                killed.append(pool)
            return pool

        monkeypatch.setattr(parallel_executor, "make_pool", killing_make_pool)
        engine = ExecutionEngine(
            build_transitive_closure_program(EDGES),
            EngineConfig.parallel(shards=2, pool="process"),
        )
        assert engine.evaluate()["path"] == reference
        assert killed, "the process pool was never built"
        assert engine.profile.worker_failures == 1
        assert engine.profile.pool_degradations >= 1
        # The killed pool left no zombie behind.
        assert all(not p.is_alive() for p in killed[0]._processes)

    @needs_fork
    def test_injected_pool_fault_degrades_process_to_thread(self, reference):
        engine = ExecutionEngine(
            build_transitive_closure_program(EDGES),
            EngineConfig.parallel(shards=2, pool="process"),
        )
        with fault_scope("pool.invoke:fail_nth=1"):
            assert engine.evaluate()["path"] == reference
        assert engine.profile.worker_failures == 1
        assert engine.profile.pool_degradations >= 1

    def test_serial_pool_cannot_degrade_further_and_raises(self):
        engine = ExecutionEngine(
            build_transitive_closure_program(EDGES),
            EngineConfig.parallel(shards=2, pool="serial"),
        )
        with fault_scope("pool.invoke:fail_nth=1"):
            with pytest.raises(WorkerFailed):
                engine.evaluate()


class TestSessionPropagationRecovery:
    def test_failed_propagation_rebuilds_from_base_facts(self, reference):
        database = Database(
            build_transitive_closure_program(EDGES[:-1]),
            EngineConfig.parallel(shards=2),
        )
        try:
            with database.connect() as conn:
                conn.query("path")  # build the persistent shard state
                with fault_scope("pool.invoke:fail_nth=1"):
                    conn.insert_facts("edge", [EDGES[-1]])
                assert set(conn.query("path").rows()) == reference
                rows = set(conn.query("sys_resilience").rows())
                assert ("event", "propagation_rebuilds", 1) in rows
                assert ("profile", "worker_failures", 1) in rows
        finally:
            database.close()

    def test_recovered_session_keeps_propagating_incrementally(self, reference):
        database = Database(
            build_transitive_closure_program(EDGES[:-1]),
            EngineConfig.parallel(shards=2),
        )
        try:
            with database.connect() as conn:
                conn.query("path")
                with fault_scope("pool.invoke:fail_nth=1"):
                    conn.insert_facts("edge", [EDGES[-1]])
                # Post-recovery mutations run the normal propagation path
                # again (the shard state is lazily rebuilt) and stay exact.
                conn.insert_facts("edge", [(6, 7)])
                conn.retract_facts("edge", [(6, 7)])
                assert set(conn.query("path").rows()) == reference
        finally:
            database.close()

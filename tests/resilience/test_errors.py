"""The typed error taxonomy: stable codes, wire round-trips, retry flags."""

import pytest

from repro.resilience.errors import (
    Cancelled,
    DeadlineExceeded,
    DurabilityError,
    ResilienceError,
    ResourceExhausted,
    TAXONOMY,
    WorkerFailed,
    error_from_code,
)

#: The full wire contract: class -> code.  Adding or renaming a code is a
#: protocol change and must be made here deliberately.
EXPECTED_CODES = {
    DeadlineExceeded: "deadline_exceeded",
    ResourceExhausted: "resource_exhausted",
    Cancelled: "cancelled",
    WorkerFailed: "worker_failed",
    DurabilityError: "durability_error",
}


class TestCodes:
    def test_every_taxonomy_class_has_its_pinned_code(self):
        assert {cls: cls.code for cls in EXPECTED_CODES} == EXPECTED_CODES

    def test_taxonomy_map_is_exactly_the_pinned_classes(self):
        assert set(TAXONOMY.values()) == set(EXPECTED_CODES)
        assert set(TAXONOMY.keys()) == set(EXPECTED_CODES.values())

    def test_every_class_is_a_resilience_error(self):
        for cls in EXPECTED_CODES:
            assert issubclass(cls, ResilienceError)

    def test_only_resource_exhaustion_is_retryable_by_class(self):
        for cls in EXPECTED_CODES:
            assert cls.retryable is (cls is ResourceExhausted)


class TestWire:
    @pytest.mark.parametrize("cls", sorted(EXPECTED_CODES, key=lambda c: c.code))
    def test_round_trip_preserves_class_message_reason_details(self, cls):
        error = cls("it broke", reason="why", shard=3)
        wire = error.to_wire()
        assert wire["code"] == cls.code
        assert wire["message"] == "it broke"
        assert wire["reason"] == "why"
        assert wire["shard"] == 3

        rebuilt = error_from_code(
            wire["code"], wire["message"], reason=wire["reason"], shard=wire["shard"]
        )
        assert type(rebuilt) is cls
        assert str(rebuilt) == "it broke"
        assert rebuilt.reason == "why"
        assert rebuilt.details == {"shard": 3}

    def test_reason_and_details_are_optional_on_the_wire(self):
        wire = Cancelled("gone").to_wire()
        assert wire == {"code": "cancelled", "message": "gone"}

    def test_empty_message_defaults_to_the_code(self):
        assert str(DeadlineExceeded()) == "deadline_exceeded"

    def test_unknown_code_survives_one_more_hop(self):
        rebuilt = error_from_code("weird_future_code", "hello")
        assert type(rebuilt) is ResilienceError
        assert rebuilt.details["origin_code"] == "weird_future_code"
        assert rebuilt.to_wire()["origin_code"] == "weird_future_code"

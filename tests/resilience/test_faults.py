"""Fault injection: spec grammar, schedules, activation scoping."""

import pytest

from repro.resilience import faults
from repro.resilience.errors import DurabilityError, WorkerFailed
from repro.resilience.faults import (
    FAULT_POINTS,
    FaultRegistry,
    FaultSpec,
    NOOP_FAULTS,
    fault_scope,
    install_from_env,
)


class TestSpecGrammar:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse("wal.fsync:fail_nth=3,fail_rate=0.5,delay=0.01")
        assert spec == FaultSpec(
            "wal.fsync", fail_nth=3, fail_rate=0.5, delay=0.01
        )

    def test_parse_point_only_is_a_passive_counter(self):
        spec = FaultSpec.parse("pool.invoke")
        assert spec == FaultSpec("pool.invoke")

    def test_unknown_point_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec.parse("wal.fsyncc:fail_nth=1")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec field"):
            FaultSpec.parse("wal.fsync:explode=1")

    @pytest.mark.parametrize("bad", [
        "wal.fsync:fail_nth=-1",
        "wal.fsync:fail_rate=1.5",
        "wal.fsync:delay=-0.1",
    ])
    def test_out_of_range_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_every_registered_point_parses(self):
        for point in FAULT_POINTS:
            assert FaultSpec.parse(f"{point}:fail_nth=1").point == point


class TestSchedules:
    def test_fail_nth_fires_exactly_once_then_recovers(self):
        registry = FaultRegistry(["wal.fsync:fail_nth=2"])
        registry.fire("wal.fsync", DurabilityError)  # hit 1: pass
        with pytest.raises(DurabilityError) as excinfo:
            registry.fire("wal.fsync", DurabilityError)  # hit 2: injected
        assert excinfo.value.reason == "injected"
        assert excinfo.value.details["point"] == "wal.fsync"
        for _ in range(10):  # the point has recovered
            registry.fire("wal.fsync", DurabilityError)
        assert registry.hits("wal.fsync") == 12
        assert registry.injected("wal.fsync") == 1

    def test_fail_rate_is_deterministic_for_a_seed(self):
        def pattern(seed):
            registry = FaultRegistry(
                ["pool.invoke:fail_rate=0.3"], seed=seed
            )
            outcomes = []
            for _ in range(50):
                try:
                    registry.fire("pool.invoke", WorkerFailed)
                    outcomes.append(False)
                except WorkerFailed:
                    outcomes.append(True)
            return outcomes

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7))            # ~30% of 50 hits fire
        assert not all(pattern(7))

    def test_unconfigured_points_count_hits_but_never_fire(self):
        registry = FaultRegistry(["wal.fsync:fail_nth=1"])
        registry.fire("pool.invoke", WorkerFailed)
        assert registry.hits("pool.invoke") == 1
        assert registry.injected() == 0

    def test_injected_error_is_the_sites_taxonomy_class(self):
        registry = FaultRegistry(["pool.invoke:fail_nth=1"])
        with pytest.raises(WorkerFailed):
            registry.fire("pool.invoke", WorkerFailed)

    def test_stat_rows_cover_configured_points(self):
        registry = FaultRegistry(
            ["wal.fsync:fail_nth=1", "pool.invoke:fail_nth=99"]
        )
        with pytest.raises(DurabilityError):
            registry.fire("wal.fsync", DurabilityError)
        registry.fire("pool.invoke", WorkerFailed)
        assert registry.stat_rows() == [
            ("fault_hits", "wal.fsync", 1),
            ("fault_injected", "wal.fsync", 1),
            ("fault_hits", "pool.invoke", 1),
            ("fault_injected", "pool.invoke", 0),
        ]


class TestActivation:
    def test_disabled_by_default(self):
        assert faults.active() is NOOP_FAULTS
        faults.fire("wal.fsync", DurabilityError)  # free no-op

    def test_fault_scope_installs_and_always_restores(self):
        with fault_scope("wal.fsync:fail_nth=1") as registry:
            assert faults.active() is registry
            with pytest.raises(DurabilityError):
                faults.fire("wal.fsync", DurabilityError)
        assert faults.active() is NOOP_FAULTS

    def test_fault_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_scope("wal.fsync:fail_nth=1"):
                raise RuntimeError("boom")
        assert faults.active() is NOOP_FAULTS

    def test_nested_scopes_restore_the_outer_registry(self):
        with fault_scope("wal.fsync:fail_nth=5") as outer:
            with fault_scope("pool.invoke:fail_nth=5") as inner:
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is NOOP_FAULTS

    def test_install_from_env_parses_specs_and_seed(self):
        environ = {"REPRO_FAULTS": "wal.fsync:fail_nth=1; seed=42; "
                                   "pool.invoke:fail_rate=0.25"}
        try:
            registry = install_from_env(environ)
            assert registry is faults.active()
            assert registry.seed == 42
            assert registry.specs() == (
                FaultSpec("wal.fsync", fail_nth=1),
                FaultSpec("pool.invoke", fail_rate=0.25),
            )
        finally:
            faults.clear()

    def test_install_from_env_without_the_variable_is_a_no_op(self):
        assert install_from_env({}) is None
        assert faults.active() is NOOP_FAULTS

    def test_noop_registry_is_stateless_and_silent(self):
        assert NOOP_FAULTS.hits("wal.fsync") == 0
        assert NOOP_FAULTS.injected() == 0
        assert NOOP_FAULTS.specs() == ()
        assert NOOP_FAULTS.stat_rows() == []

"""Query lifecycle governance through the engine: deadlines, caps, cancel.

The acceptance bar for the resilience layer: a deadline-governed query over
an unbounded-growth program must come back as a typed
:class:`DeadlineExceeded` within 2x the deadline on *every* executor x shard
configuration — and the session must stay fully usable afterwards.
"""

import threading
import time

import pytest

from repro import (
    Cancelled,
    CancellationToken,
    Database,
    DeadlineExceeded,
    EngineConfig,
    QueryLimits,
    ResourceExhausted,
)
from repro.analyses.micro import build_transitive_closure_program

#: A cycle: the closure is all n^2 pairs, far more work than any deadline
#: below grants — evaluation is effectively unbounded growth.
SLOW_EDGES = [(i, i + 1) for i in range(600)] + [(600, 0)]

#: Small enough to finish instantly — the post-abort usability probe.
FAST_EDGES = [(1, 2), (2, 3), (3, 4)]
FAST_CLOSURE = {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}

DEADLINE = 0.05

CONFIG_GRID = [
    pytest.param(executor, shards, id=f"{executor}-shards{shards}")
    for executor in ("pushdown", "vectorized")
    for shards in (1, 4)
]


def make_config(executor: str, shards: int) -> EngineConfig:
    config = EngineConfig(executor=executor)
    if shards > 1:
        config = EngineConfig.parallel(shards=shards, base=config)
    return config


class TestDeadline:
    @pytest.mark.parametrize("executor,shards", CONFIG_GRID)
    def test_deadline_bounds_latency_on_every_configuration(
        self, executor, shards
    ):
        database = Database(build_transitive_closure_program(SLOW_EDGES),
                            make_config(executor, shards))
        try:
            with database.connect() as conn:
                started = time.perf_counter()
                with pytest.raises(DeadlineExceeded):
                    conn.query(
                        "path", limits=QueryLimits(deadline_seconds=DEADLINE)
                    )
                elapsed = time.perf_counter() - started
                assert elapsed < 2 * DEADLINE, (
                    f"abort took {elapsed * 1000:.1f}ms against a "
                    f"{DEADLINE * 1000:.0f}ms deadline"
                )
        finally:
            database.close()

    @pytest.mark.parametrize("executor,shards", CONFIG_GRID)
    def test_session_recovers_to_ground_state_after_a_deadline(
        self, executor, shards
    ):
        database = Database(build_transitive_closure_program(FAST_EDGES),
                            make_config(executor, shards))
        try:
            with database.connect() as conn:
                # An impossible deadline aborts even this tiny program ...
                with pytest.raises(DeadlineExceeded):
                    conn.query(
                        "path", limits=QueryLimits(deadline_seconds=1e-9)
                    )
                # ... and the very next un-governed query is correct.
                assert set(conn.query("path").rows()) == FAST_CLOSURE
        finally:
            database.close()


class TestResourceCaps:
    def test_max_rounds_aborts_unbounded_growth(self):
        database = Database(build_transitive_closure_program(SLOW_EDGES))
        try:
            with database.connect() as conn:
                with pytest.raises(ResourceExhausted) as excinfo:
                    conn.query("path", limits=QueryLimits(max_rounds=3))
                assert excinfo.value.reason == "max_rounds"
        finally:
            database.close()

    def test_max_rows_aborts_oversized_derivations(self):
        database = Database(build_transitive_closure_program(SLOW_EDGES))
        try:
            with database.connect() as conn:
                with pytest.raises(ResourceExhausted) as excinfo:
                    conn.query("path", limits=QueryLimits(max_rows=1000))
                assert excinfo.value.reason == "max_rows"
        finally:
            database.close()

    def test_max_result_bytes_guards_the_fetch_not_the_fixpoint(self):
        database = Database(build_transitive_closure_program(FAST_EDGES))
        try:
            with database.connect() as conn:
                with pytest.raises(ResourceExhausted) as excinfo:
                    # 6 rows x 2 cols x 8 bytes = 96 bytes estimated.
                    conn.query("path", limits=QueryLimits(max_result_bytes=64))
                assert excinfo.value.reason == "max_result_bytes"
                # The fixpoint itself survived: a roomier fetch succeeds
                # without re-evaluating.
                result = conn.query(
                    "path", limits=QueryLimits(max_result_bytes=10_000)
                )
                assert set(result.rows()) == FAST_CLOSURE
        finally:
            database.close()

    def test_config_level_limits_govern_every_query_automatically(self):
        config = EngineConfig().with_(limits=QueryLimits(max_rounds=3))
        database = Database(build_transitive_closure_program(SLOW_EDGES), config)
        try:
            with pytest.raises(ResourceExhausted):
                database.query("path")
        finally:
            database.close()

    def test_config_level_limits_never_govern_mutations(self):
        # max_rounds=1 aborts any governed multi-round fixpoint — but
        # limits are query governance: a mutation (and its incremental
        # propagation) must complete, or base rows and derived state
        # diverge with ``_evaluated`` left True.
        config = EngineConfig().with_(limits=QueryLimits(max_rounds=1))
        database = Database(build_transitive_closure_program([(1, 2)]), config)
        try:
            with database.connect() as conn:
                conn.insert_facts("edge", [(2, 3), (3, 4)])
                # The repaired fixpoint is complete and already
                # materialized, so even the governed read serves it.
                assert set(conn.query("path").rows()) == FAST_CLOSURE
        finally:
            database.close()

    def test_per_query_limits_override_config_limits(self):
        config = EngineConfig().with_(limits=QueryLimits(max_rounds=1))
        database = Database(build_transitive_closure_program(FAST_EDGES), config)
        try:
            with database.connect() as conn:
                result = conn.query(
                    "path", limits=QueryLimits(max_rounds=1000)
                )
                assert set(result.rows()) == FAST_CLOSURE
        finally:
            database.close()


class TestCancellation:
    def test_pre_cancelled_token_aborts_immediately(self):
        database = Database(build_transitive_closure_program(FAST_EDGES))
        try:
            token = CancellationToken()
            token.cancel("caller gave up")
            with database.connect() as conn:
                with pytest.raises(Cancelled) as excinfo:
                    conn.query("path", token=token)
                assert excinfo.value.reason == "caller gave up"
        finally:
            database.close()

    def test_cancel_from_another_thread_interrupts_evaluation(self):
        database = Database(build_transitive_closure_program(SLOW_EDGES))
        try:
            token = CancellationToken()
            timer = threading.Timer(0.03, token.cancel, args=("timer fired",))
            timer.start()
            try:
                with database.connect() as conn:
                    started = time.perf_counter()
                    with pytest.raises(Cancelled):
                        conn.query("path", token=token)
                    # Cooperative checks run every iteration: the abort
                    # lands promptly, not at the end of the fixpoint.
                    assert time.perf_counter() - started < 2.0
            finally:
                timer.cancel()
        finally:
            database.close()


class TestObservability:
    def test_aborts_are_counted_in_sys_resilience(self):
        database = Database(build_transitive_closure_program(SLOW_EDGES))
        try:
            with database.connect() as conn:
                with pytest.raises(ResourceExhausted):
                    conn.query("path", limits=QueryLimits(max_rounds=2))
                rows = set(conn.query("sys_resilience").rows())
                assert ("event", "resource_exhausted", 1) in rows
        finally:
            database.close()

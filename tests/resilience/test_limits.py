"""QueryLimits, CancellationToken and the governor's enforcement rules."""

import threading
import time

import pytest

from repro.resilience.cancel import NOOP_TOKEN, CancellationToken
from repro.resilience.errors import Cancelled, DeadlineExceeded, ResourceExhausted
from repro.resilience.limits import (
    NOOP_GOVERNOR,
    QueryGovernor,
    QueryLimits,
    governor_of,
)


class TestQueryLimits:
    def test_defaults_are_unbounded(self):
        assert QueryLimits().unbounded

    def test_any_bound_makes_it_bounded(self):
        assert not QueryLimits(deadline_seconds=1.0).unbounded
        assert not QueryLimits(max_rows=1).unbounded
        assert not QueryLimits(max_rounds=1).unbounded
        assert not QueryLimits(max_result_bytes=1).unbounded

    @pytest.mark.parametrize("field", [
        "deadline_seconds", "max_rows", "max_rounds", "max_result_bytes",
    ])
    def test_non_positive_bounds_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            QueryLimits(**{field: 0})


class TestCancellationToken:
    def test_fresh_token_passes_checks(self):
        token = CancellationToken()
        token.check()
        assert not token.cancelled and not token.expired()

    def test_cancel_raises_with_the_reason(self):
        token = CancellationToken()
        token.cancel("client disconnected")
        with pytest.raises(Cancelled) as excinfo:
            token.check()
        assert excinfo.value.reason == "client disconnected"

    def test_cancel_is_visible_across_threads(self):
        token = CancellationToken()
        thread = threading.Thread(target=token.cancel, args=("other thread",))
        thread.start()
        thread.join()
        with pytest.raises(Cancelled):
            token.check()

    def test_deadline_in_the_past_raises_deadline_exceeded(self):
        token = CancellationToken(deadline=time.monotonic() - 0.001)
        assert token.expired()
        with pytest.raises(DeadlineExceeded):
            token.check()

    def test_with_timeout_sets_a_future_deadline(self):
        token = CancellationToken.with_timeout(60.0)
        remaining = token.remaining()
        assert remaining is not None and 59.0 < remaining <= 60.0

    def test_noop_token_never_trips(self):
        NOOP_TOKEN.check()
        NOOP_TOKEN.cancel("ignored")
        NOOP_TOKEN.check()
        assert not NOOP_TOKEN.active


class TestGovernorOf:
    def test_unbounded_everything_is_the_shared_noop(self):
        assert governor_of() is NOOP_GOVERNOR
        assert governor_of(QueryLimits()) is NOOP_GOVERNOR
        assert governor_of(None, NOOP_TOKEN) is NOOP_GOVERNOR

    def test_any_bound_or_live_token_gets_a_real_governor(self):
        assert isinstance(governor_of(QueryLimits(max_rows=5)), QueryGovernor)
        assert isinstance(governor_of(None, CancellationToken()), QueryGovernor)

    def test_noop_governor_is_free_everywhere(self):
        assert not NOOP_GOVERNOR.active
        NOOP_GOVERNOR.check()
        NOOP_GOVERNOR.on_round(10**9)
        NOOP_GOVERNOR.check_result_bytes(10**12)


class TestGovernorEnforcement:
    def test_max_rounds_trips_on_the_crossing_round(self):
        governor = QueryGovernor(QueryLimits(max_rounds=2))
        governor.on_round(1)
        governor.on_round(1)
        with pytest.raises(ResourceExhausted) as excinfo:
            governor.on_round(1)
        assert excinfo.value.reason == "max_rounds"

    def test_max_rows_counts_promoted_rows_across_rounds(self):
        governor = QueryGovernor(QueryLimits(max_rows=100))
        governor.on_round(60)
        with pytest.raises(ResourceExhausted) as excinfo:
            governor.on_round(60)
        assert excinfo.value.reason == "max_rows"
        assert governor.rows_derived == 120

    def test_deadline_limit_trips_check(self):
        governor = QueryGovernor(QueryLimits(deadline_seconds=0.005))
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded):
            governor.check()

    def test_callers_token_stays_authoritative_for_cancellation(self):
        token = CancellationToken()
        governor = QueryGovernor(QueryLimits(deadline_seconds=60.0), token)
        token.cancel("caller gave up")
        with pytest.raises(Cancelled):
            governor.check()

    def test_effective_deadline_is_the_tighter_of_token_and_limits(self):
        token = CancellationToken.with_timeout(60.0)
        tighter = QueryGovernor(QueryLimits(deadline_seconds=1.0), token)
        assert tighter.deadline < token.deadline
        looser = QueryGovernor(QueryLimits(deadline_seconds=120.0), token)
        assert looser.deadline == token.deadline

    def test_result_bytes_guard(self):
        governor = QueryGovernor(QueryLimits(max_result_bytes=1024))
        governor.check_result_bytes(1024)
        with pytest.raises(ResourceExhausted) as excinfo:
            governor.check_result_bytes(1025)
        assert excinfo.value.reason == "max_result_bytes"

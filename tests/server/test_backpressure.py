"""Unit tests for mutation-queue admission control (block / reject / shed)."""

import asyncio

import pytest

from repro.server.backpressure import (
    POLICIES,
    BackpressureConfig,
    BackpressureError,
    MutationQueue,
)


class TestConfig:
    def test_defaults(self):
        config = BackpressureConfig()
        assert config.policy == "block"
        assert config.max_pending == 64
        assert config.block_timeout is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            BackpressureConfig(policy="drop")

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            BackpressureConfig(max_pending=0)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_constructs(self, policy):
        assert BackpressureConfig(policy=policy).policy == policy


class TestRejectPolicy:
    def test_put_beyond_capacity_raises_backpressure(self):
        async def scenario():
            queue = MutationQueue(BackpressureConfig(
                policy="reject", max_pending=2,
            ))
            await queue.put({"n": 1})
            await queue.put({"n": 2})
            with pytest.raises(BackpressureError) as excinfo:
                await queue.put({"n": 3})
            assert excinfo.value.code == "resource_exhausted"
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.details["policy"] == "reject"
            wire = excinfo.value.to_wire()
            assert wire["code"] == "resource_exhausted"
            assert queue.rejected == 1
            assert queue.submitted == 2
            assert queue.depth() == 2

        asyncio.run(scenario())


class TestShedPolicy:
    def test_oldest_pending_is_evicted_with_shed_error(self):
        async def scenario():
            queue = MutationQueue(BackpressureConfig(
                policy="shed", max_pending=2,
            ))
            first = await queue.put({"n": 1})
            await queue.put({"n": 2})
            third = await queue.put({"n": 3})
            # The oldest future failed; the newest was admitted.
            assert first.done()
            with pytest.raises(BackpressureError) as excinfo:
                first.result()
            assert excinfo.value.code == "cancelled"
            assert excinfo.value.reason == "shed"
            assert not third.done()
            assert queue.shed == 1
            assert queue.depth() == 2
            payload, _ = await queue.get()
            assert payload == {"n": 2}  # n=1 was the one shed

        asyncio.run(scenario())


class TestBlockPolicy:
    def test_put_waits_until_the_writer_frees_a_slot(self):
        async def scenario():
            queue = MutationQueue(BackpressureConfig(
                policy="block", max_pending=1,
            ))
            await queue.put({"n": 1})

            blocked = asyncio.get_running_loop().create_task(
                queue.put({"n": 2})
            )
            await asyncio.sleep(0.01)
            assert not blocked.done()  # genuinely waiting for space

            payload, _ = await queue.get()
            assert payload == {"n": 1}
            future = await asyncio.wait_for(blocked, timeout=5)
            assert not future.done()
            assert queue.depth() == 1

        asyncio.run(scenario())

    def test_block_timeout_surfaces_as_timeout_error(self):
        async def scenario():
            queue = MutationQueue(BackpressureConfig(
                policy="block", max_pending=1, block_timeout=0.02,
            ))
            await queue.put({"n": 1})
            with pytest.raises(BackpressureError) as excinfo:
                await queue.put({"n": 2})
            assert excinfo.value.code == "deadline_exceeded"
            assert excinfo.value.reason == "queue_timeout"
            assert queue.rejected == 1

        asyncio.run(scenario())


class TestDrain:
    def test_drain_fails_every_pending_future(self):
        async def scenario():
            queue = MutationQueue(BackpressureConfig(max_pending=8))
            futures = [await queue.put({"n": n}) for n in range(3)]
            assert queue.drain() == 3
            assert queue.depth() == 0
            for future in futures:
                with pytest.raises(BackpressureError) as excinfo:
                    future.result()
                assert excinfo.value.code == "cancelled"
                assert excinfo.value.reason == "shutdown"

        asyncio.run(scenario())

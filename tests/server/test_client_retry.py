"""RetryPolicy unit tests: backoff math and the safe-to-resend matrix."""

import pytest

from repro.server.client import ProtocolError, RetryPolicy, ServerError


def _server_error(code, enqueued=None):
    return ServerError({"code": code, "message": code}, enqueued=enqueued)


class TestBackoff:
    def test_delay_count_is_attempts_minus_one(self):
        assert len(list(RetryPolicy(attempts=1).delays())) == 0
        assert len(list(RetryPolicy(attempts=4).delays())) == 3

    def test_delays_grow_exponentially_and_cap_at_max(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_only_shrinks_within_its_fraction(self):
        policy = RetryPolicy(
            attempts=50, base_delay=1.0, max_delay=1.0, jitter=0.25, seed=7
        )
        delays = list(policy.delays())
        assert all(0.75 <= delay <= 1.0 for delay in delays)
        assert len(set(delays)) > 1  # actually jittered, not constant

    def test_seeded_jitter_is_reproducible(self):
        one = list(RetryPolicy(attempts=5, seed=42).delays())
        two = list(RetryPolicy(attempts=5, seed=42).delays())
        other = list(RetryPolicy(attempts=5, seed=43).delays())
        assert one == two
        assert one != other

    @pytest.mark.parametrize("kwargs,match", [
        ({"attempts": 0}, "attempts"),
        ({"base_delay": -0.1}, "delays"),
        ({"max_delay": -1.0}, "delays"),
        ({"jitter": 1.5}, "jitter"),
        ({"jitter": -0.1}, "jitter"),
    ])
    def test_invalid_policies_are_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)


class TestShouldRetry:
    def test_transient_server_errors_retry_reads(self):
        policy = RetryPolicy()
        assert policy.should_retry("query", _server_error("resource_exhausted"))

    def test_non_transient_codes_never_retry(self):
        policy = RetryPolicy()
        for code in ("bad_request", "unknown_relation", "deadline_exceeded",
                     "cancelled", "worker_failed", "durability_error"):
            assert not policy.should_retry("query", _server_error(code))
            assert not policy.should_retry("insert", _server_error(code))

    def test_mutations_retry_only_when_provably_not_enqueued(self):
        policy = RetryPolicy()
        refused = _server_error("resource_exhausted", enqueued=False)
        admitted = _server_error("resource_exhausted", enqueued=True)
        unknown = _server_error("resource_exhausted", enqueued=None)
        for op in ("insert", "retract", "apply"):
            assert policy.should_retry(op, refused)
            # Admitted or ambiguous: a resend risks double-apply.
            assert not policy.should_retry(op, admitted)
            assert not policy.should_retry(op, unknown)

    def test_dead_transport_retries_reads_but_never_mutations(self):
        policy = RetryPolicy()
        for error in (ConnectionResetError(), BrokenPipeError(),
                      OSError("boom"), ProtocolError("closed")):
            assert policy.should_retry("query", error)
            assert policy.should_retry("ping", error)
            assert not policy.should_retry("insert", error)
            assert not policy.should_retry("apply", error)

    def test_unrelated_exceptions_never_retry(self):
        assert not RetryPolicy().should_retry("query", ValueError("nope"))

"""Client-disconnect behaviour: cancel reads, never lose enqueued writes.

Two halves of the same contract:

* a governed (deadline-carrying) read whose client vanishes mid-query is
  cancelled cooperatively — the server stops computing for a dead socket,
  counts the cancel and emits one structured log line;
* a mutation that was already admitted to the write queue is applied even
  if the client disconnects before reading the response — exactly-once
  admission means a vanished client never silently loses a write.
"""

import logging
import socket
import threading
import time

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.server import BlockingClient, ServerThread
from repro.server.protocol import encode_frame

EDGES = [(1, 2), (2, 3), (3, 4)]


@pytest.fixture()
def served():
    database = Database(build_transitive_closure_program(EDGES))
    with ServerThread(database) as thread:
        with BlockingClient(thread.host, thread.port) as client:
            yield thread, client
    database.close()


def _poll(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestDisconnectMidQuery:
    def test_disconnect_cancels_a_governed_read(
        self, served, monkeypatch, caplog
    ):
        thread, client = served
        import repro.server.server as server_module

        # Hold the governed read open on the reader thread so the
        # disconnect deterministically lands mid-query.  The event-loop
        # watcher must notice the dead transport while this read is stuck.
        real_jsonify = server_module.jsonify_rows
        read_started = threading.Event()
        release_read = threading.Event()

        def held_jsonify(rows):
            read_started.set()
            release_read.wait(timeout=10.0)
            return real_jsonify(rows)

        monkeypatch.setattr(server_module, "jsonify_rows", held_jsonify)
        with caplog.at_level(logging.INFO, logger="repro.server"):
            victim = socket.create_connection((thread.host, thread.port))
            try:
                victim.sendall(encode_frame({
                    "op": "query", "relation": "path", "deadline_ms": 60_000,
                }))
                assert read_started.wait(timeout=5.0), (
                    "the governed read never reached the reader pool"
                )
            finally:
                victim.close()  # vanish without reading the response

            # The watcher cancels the in-flight token without waiting for
            # the wedged read to finish — observed through a second client.
            assert _poll(lambda: client.metrics().get(
                "server_disconnect_cancels_total", 0) >= 1
            ), "the disconnect was never noticed while the read ran"
            release_read.set()
            # The unblocked read hits the cancelled token and aborts typed.
            assert _poll(lambda: client.metrics().get(
                "server_query_aborts_total{code=cancelled}", 0) >= 1
            ), "the cancelled read did not abort at its next check"
        assert any(
            "event=disconnect-cancel" in record.getMessage()
            for record in caplog.records
        ), "no structured disconnect-cancel log line was emitted"
        # The server is fully healthy afterwards.
        assert client.ping()
        assert set(client.query("path")) >= set(EDGES)

    def test_ungoverned_reads_never_pay_for_the_watcher(self, served):
        # No deadline -> the sync fast path: no token, no watcher, and
        # therefore no cancel accounting even across a rude disconnect.
        thread, client = served
        victim = socket.create_connection((thread.host, thread.port))
        victim.sendall(encode_frame({"op": "query", "relation": "path"}))
        victim.close()
        assert _poll(
            lambda: client.server_stats()["connections"] == 1
        ), "the victim connection was never torn down"
        assert client.metrics().get(
            "server_disconnect_cancels_total", 0
        ) == 0


class TestDisconnectMidMutation:
    def test_an_enqueued_write_survives_the_clients_disconnect(self, served):
        thread, client = served
        raw = socket.create_connection((thread.host, thread.port))
        raw.sendall(encode_frame({
            "op": "insert", "relation": "edge", "rows": [[4, 5]],
        }))
        raw.close()  # gone before the server can even respond
        # The write was admitted, so it MUST be applied: the derivation
        # through the new edge appears for everyone else.
        assert _poll(lambda: (1, 5) in set(client.query("path"))), (
            "the enqueued write was lost when the client vanished"
        )
        assert client.server_stats()["mutations_applied"] >= 1

    def test_a_disconnected_writers_batch_keeps_the_queue_draining(
        self, served
    ):
        thread, client = served
        raw = socket.create_connection((thread.host, thread.port))
        raw.sendall(
            encode_frame({
                "op": "insert", "relation": "edge", "rows": [[4, 5]],
            })
            + encode_frame({
                "op": "insert", "relation": "edge", "rows": [[5, 6]],
            })
        )
        raw.close()
        assert _poll(lambda: (1, 6) in set(client.query("path"))), (
            "writes behind a vanished client were never applied"
        )
        # And a live client's mutations still land normally afterwards.
        client.insert("edge", [(6, 7)])
        assert (1, 7) in set(client.query("path"))

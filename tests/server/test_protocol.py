"""Unit tests for the wire protocol: framing, line mode, JSON safety."""

import asyncio

import pytest

from repro.resilience.errors import ResourceExhausted
from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_line,
    encode_payload,
    jsonify_rows,
    jsonify_value,
    read_frame,
    read_line,
)


def fed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_frame_round_trip(self):
        message = {"op": "query", "relation": "path", "id": 7}
        frame = encode_frame(message)
        assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
        assert decode_frame(frame[4:]) == message

    def test_first_prefix_byte_is_always_nul(self):
        # The mode discriminator: MAX_FRAME < 2**24 keeps byte 0 at 0x00.
        assert MAX_FRAME < 1 << 24
        assert encode_frame({"op": "ping"})[0] == 0

    def test_oversized_frame_is_rejected_at_encode_time(self):
        with pytest.raises(ResourceExhausted) as excinfo:
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})
        assert excinfo.value.reason == "oversize"

    def test_read_frame_returns_message_and_bytes_consumed(self):
        message = {"op": "ping", "id": 1}
        frame = encode_frame(message)

        async def scenario():
            return await read_frame(fed_reader(frame))

        decoded, consumed = asyncio.run(scenario())
        assert decoded == message
        assert consumed == len(frame)

    def test_read_frame_with_preconsumed_mode_byte(self):
        frame = encode_frame({"op": "ping"})

        async def scenario():
            return await read_frame(fed_reader(frame[1:]), first_byte=frame[:1])

        decoded, consumed = asyncio.run(scenario())
        assert decoded == {"op": "ping"}
        assert consumed == len(frame)

    def test_read_frame_clean_eof_is_none(self):
        async def scenario():
            return await read_frame(fed_reader(b""))

        assert asyncio.run(scenario()) is None

    def test_read_frame_mid_frame_eof_raises(self):
        frame = encode_frame({"op": "ping"})

        async def scenario():
            return await read_frame(fed_reader(frame[:-2]))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_read_frame_oversized_declared_length_raises(self):
        prefix = (MAX_FRAME + 1).to_bytes(4, "big")

        async def scenario():
            return await read_frame(fed_reader(prefix + b"x" * 8))

        with pytest.raises(ResourceExhausted) as excinfo:
            asyncio.run(scenario())
        assert excinfo.value.reason == "oversize"


class TestLineMode:
    def test_line_round_trip(self):
        message = {"op": "query", "relation": "path"}
        line = encode_line(message)
        assert line.endswith(b"\n")

        async def scenario():
            return await read_line(fed_reader(line))

        decoded, consumed = asyncio.run(scenario())
        assert decoded == message
        assert consumed == len(line)

    def test_blank_line_decodes_to_empty_message(self):
        async def scenario():
            return await read_line(fed_reader(b"\n"))

        decoded, consumed = asyncio.run(scenario())
        assert decoded == {}
        assert consumed == 1

    def test_clean_eof_is_none(self):
        async def scenario():
            return await read_line(fed_reader(b""))

        assert asyncio.run(scenario()) is None

    def test_malformed_json_raises(self):
        async def scenario():
            return await read_line(fed_reader(b"{not json}\n"))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())


class TestPayloads:
    def test_non_object_payload_is_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_payload_is_compact_json(self):
        assert encode_payload({"a": 1, "b": [2, 3]}) == b'{"a":1,"b":[2,3]}'

    def test_jsonify_passes_scalars_and_reprs_the_rest(self):
        assert jsonify_value(3) == 3
        assert jsonify_value("x") == "x"
        assert jsonify_value(None) is None
        assert jsonify_value(True) is True
        assert jsonify_value((1, 2)) == "(1, 2)"

    def test_jsonify_rows_makes_json_arrays(self):
        rows = [(1, "a"), (frozenset({2}), None)]
        assert jsonify_rows(rows) == [[1, "a"], ["frozenset({2})", None]]

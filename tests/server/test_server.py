"""End-to-end tests for the query server over real TCP connections."""

import json
import socket

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.server import (
    BackpressureConfig,
    BlockingClient,
    ServerThread,
)
from repro.server.client import ServerError

EDGES = [(1, 2), (2, 3), (3, 4)]
CLOSURE = {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}


@pytest.fixture()
def served():
    database = Database(build_transitive_closure_program(EDGES))
    with ServerThread(database) as thread:
        with BlockingClient(thread.host, thread.port) as client:
            yield thread, client
    database.close()


class TestQueries:
    def test_ping(self, served):
        _, client = served
        assert client.ping() is True

    def test_query_returns_the_closure(self, served):
        _, client = served
        assert set(client.query("path")) == CLOSURE

    def test_query_response_carries_count_and_snapshot_version(self, served):
        _, client = served
        response = client.query_response("path")
        assert response["count"] == len(CLOSURE)
        assert response["snapshot_version"] == 0

    def test_pagination_is_deterministic(self, served):
        _, client = served
        everything = client.query("path")
        assert client.query("path", offset=2, limit=3) == everything[2:5]
        assert client.query("path", limit=0) == []

    def test_unknown_relation_is_a_structured_error(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.query("nope")
        assert excinfo.value.code == "unknown_relation"

    def test_unknown_op_is_a_structured_error(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.request({"op": "sudo"})
        assert excinfo.value.code == "unknown_op"

    def test_query_without_relation_is_a_bad_request(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.request({"op": "query"})
        assert excinfo.value.code == "bad_request"


class TestMutations:
    def test_insert_propagates_and_advances_the_snapshot(self, served):
        _, client = served
        response = client.insert("edge", [(4, 5)])
        assert response["report"]["strategy"] == "incremental"
        assert response["report"]["inserted"] == 1
        assert response["snapshot_version"] == 1
        paths = set(client.query("path"))
        assert (1, 5) in paths  # 1→2→3→4→5 closed through the new edge
        assert client.query_response("path")["snapshot_version"] == 1

    def test_retract_removes_downstream_derivations(self, served):
        _, client = served
        client.retract("edge", [(2, 3)])
        paths = set(client.query("path"))
        assert (1, 3) not in paths and (1, 4) not in paths
        assert (3, 4) in paths

    def test_apply_combines_inserts_and_retracts(self, served):
        _, client = served
        response = client.apply(
            inserts={"edge": [[4, 5]]}, retracts={"edge": [[1, 2]]},
        )
        assert response["ok"] is True
        paths = set(client.query("path"))
        assert (4, 5) in paths and (1, 2) not in paths

    def test_mutating_an_unknown_relation_fails_cleanly(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.insert("nope", [(1, 2)])
        assert excinfo.value.code == "mutation_failed"
        assert client.ping()  # connection survives the failure

    def test_insert_without_rows_is_a_bad_request(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.request({"op": "insert", "relation": "edge"})
        assert excinfo.value.code == "bad_request"


class TestSnapshotResultCache:
    def test_reads_at_one_version_share_one_pinned_result(self, served):
        thread, client = served
        client.query("path")
        client.query("path")
        cache = thread.server._result_cache
        assert list(cache) == [("path", 0)]
        assert thread.server.snapshots.pin_count(0) == 1

    def test_superseded_versions_are_evicted_on_the_next_read(self, served):
        thread, client = served
        client.query("path")
        client.insert("edge", [(4, 5)])
        client.query("path")
        cache = thread.server._result_cache
        assert list(cache) == [("path", 1)]
        assert thread.server.snapshots.pin_count(0) == 0
        assert thread.server.snapshots.live_versions() == (1,)


class TestObservability:
    def test_sys_connections_lists_this_connection(self, served):
        _, client = served
        client.ping()
        rows = client.query("sys_connections")
        assert len(rows) == 1
        conn, peer, state, mode, queries, mutations, _, _ = rows[0]
        assert state == "open"
        assert mode == "framed"
        assert queries >= 1

    def test_sys_query_responses_have_no_snapshot_version(self, served):
        _, client = served
        assert "snapshot_version" not in client.query_response("sys_server")

    def test_sys_server_row_reflects_the_configuration(self, served):
        _, client = served
        rows = client.query("sys_server")
        assert len(rows) == 1
        (uptime, connections, depth, capacity, policy,
         applied, shed, rejected, version, live) = rows[0]
        assert uptime >= 0
        assert connections == 1
        assert capacity == 64 and policy == "block"
        assert applied == 0 and shed == 0 and rejected == 0
        assert version == 0 and live >= 1

    def test_explain_mentions_the_relation(self, served):
        _, client = served
        assert "path" in client.explain("path")

    def test_metrics_include_server_counters(self, served):
        _, client = served
        client.query("path")
        metrics = client.metrics()
        assert any("server_requests_total" in key for key in metrics)

    def test_server_stats_superset_of_sys_server(self, served):
        _, client = served
        stats = client.server_stats()
        assert stats["policy"] == "block"
        assert stats["snapshot_version"] == 0
        assert stats["snapshots"]["live"] >= 1


class TestWireModes:
    def test_line_mode_speaks_newline_json(self, served):
        thread, _ = served
        with socket.create_connection(
            (thread.host, thread.port), timeout=10
        ) as sock:
            sock.sendall(b'{"op": "ping", "id": 1}\n')
            buffer = b""
            while b"\n" not in buffer:
                buffer += sock.recv(65536)
            response = json.loads(buffer.split(b"\n", 1)[0])
            assert response == {"ok": True, "pong": True, "id": 1}
            sock.sendall(b'{"op": "close"}\n')

    def test_line_mode_client(self, served):
        thread, _ = served
        with BlockingClient(thread.host, thread.port, framed=False) as client:
            assert client.ping() is True
            assert set(client.query("path")) == CLOSURE


class TestBackpressureOverTheWire:
    def test_reject_policy_surfaces_structured_errors(self):
        database = Database(build_transitive_closure_program(EDGES))
        backpressure = BackpressureConfig(policy="reject", max_pending=1)
        with ServerThread(database, backpressure=backpressure) as thread:
            with BlockingClient(thread.host, thread.port) as client:
                stats = client.server_stats()
                assert stats["policy"] == "reject"
                assert stats["queue_capacity"] == 1
                # Whether a given insert is rejected depends on writer
                # timing; the policy plumbing is what's under test here.
                client.insert("edge", [(4, 5)])
                assert (1, 5) in set(client.query("path"))
        database.close()


class TestLifecycle:
    def test_two_clients_are_isolated_and_counted(self, served):
        thread, first = served
        with BlockingClient(thread.host, thread.port) as second:
            assert second.ping()
            rows = first.query("sys_connections")
            assert len(rows) == 2
        assert thread.server.registry.accepted >= 2

    def test_stop_is_idempotent(self):
        database = Database(build_transitive_closure_program(EDGES))
        thread = ServerThread(database).start()
        with BlockingClient(thread.host, thread.port) as client:
            assert client.ping()
        thread.stop()
        thread.stop()
        database.close()

"""One-way layering: the server embeds the engine, never the reverse.

:mod:`repro.server` sits above :mod:`repro.api` — it holds a Database and
serves it.  Nothing underneath (the API layer included) may import the
server package: the engine must stay embeddable without pulling in asyncio
serving machinery.  ``.github/workflows/smoke.yml`` greps for the same
rule; this test pins it in the suite.
"""

import pathlib
import re

#: Every package below repro.server in the layering diagram.
NON_SERVER_PACKAGES = (
    "analyses", "api", "core", "datalog", "durability", "engine",
    "incremental", "introspect", "ir", "parallel", "relational",
    "telemetry", "workloads",
)

IMPORT_PATTERN = re.compile(
    r"^\s*(from repro\.server|import repro\.server"
    r"|from repro import .*\bserver\b)",
    re.MULTILINE,
)


def test_nothing_below_the_server_imports_it():
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    offenders = []
    for package in NON_SERVER_PACKAGES:
        for path in (src / package).rglob("*.py"):
            if IMPORT_PATTERN.search(path.read_text(encoding="utf-8")):
                offenders.append(str(path))
    assert not offenders, f"engine layers import repro.server: {offenders}"


def test_top_level_package_does_not_import_the_server():
    """``import repro`` must not drag in asyncio serving machinery."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    text = (src / "__init__.py").read_text(encoding="utf-8")
    assert not IMPORT_PATTERN.search(text)


def test_server_package_only_imports_api_and_below():
    """The server speaks to the engine through the public Database API
    (plus core config, telemetry types, the resilience taxonomy/faults it
    reports through, and the durability config it forwards to Database) —
    never engine internals."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    allowed = re.compile(
        r"\s*from repro\.(server|api|core|telemetry|durability|resilience)[.\s]"
    )
    any_repro = re.compile(r"\s*from repro\.\w+")
    offenders = []
    for path in (src / "server").rglob("*.py"):
        for line in path.read_text(encoding="utf-8").splitlines():
            if any_repro.match(line) and not allowed.match(line):
                offenders.append(f"{path}: {line.strip()}")
    assert not offenders, f"server imports engine internals: {offenders}"

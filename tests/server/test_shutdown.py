"""Graceful-shutdown semantics: in-flight commits finish, queued work fails
with a structured ``shutdown`` error, the WAL is durable before sockets
close, and the CLI honors SIGINT the same way."""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.durability import DurabilityConfig
from repro.server.backpressure import (
    BackpressureConfig,
    BackpressureError,
    MutationQueue,
    QueueClosed,
)
from repro.server.server import QueryServer

EDGES = [(1, 2), (2, 3), (3, 4)]


def run(coro):
    return asyncio.run(coro)


class TestQueueClose:
    def test_get_raises_queue_closed_once_empty(self):
        async def scenario():
            queue = MutationQueue()
            future = await queue.put({"n": 1})
            queue.close()
            payload, got = await queue.get()  # queued item still served
            assert payload == {"n": 1} and got is future
            with pytest.raises(QueueClosed):
                await queue.get()
        run(scenario())

    def test_put_after_close_fails_with_shutdown_code(self):
        async def scenario():
            queue = MutationQueue()
            queue.close()
            with pytest.raises(BackpressureError) as excinfo:
                await queue.put({"n": 1})
            assert excinfo.value.code == "cancelled"
            assert excinfo.value.reason == "shutdown"
        run(scenario())

    def test_drain_fails_pending_with_shutdown_code(self):
        async def scenario():
            queue = MutationQueue()
            future = await queue.put({"n": 1})
            assert queue.drain() == 1
            assert isinstance(future.exception(), BackpressureError)
            assert future.exception().code == "cancelled"
            assert future.exception().reason == "shutdown"
        run(scenario())

    def test_close_wakes_a_blocked_get(self):
        async def scenario():
            queue = MutationQueue()
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0.01)  # getter parks on the empty queue
            queue.close()
            with pytest.raises(QueueClosed):
                await asyncio.wait_for(getter, timeout=1)
        run(scenario())


class TestServerStop:
    def test_stop_finishes_inflight_and_fails_queued(self):
        """The writer's dequeued batch commits and resolves; mutations
        still in the queue at stop() fail with the ``shutdown`` code.
        The old stop() cancelled the writer mid-executor, orphaning the
        in-flight future forever."""
        async def scenario():
            database = Database(build_transitive_closure_program(EDGES))
            server = QueryServer(database)
            await server.start()
            # Stall the single writer-thread worker so the first batch is
            # dequeued but stuck "applying" while more work queues behind.
            gate = threading.Event()
            server._writer_pool.submit(gate.wait)
            inflight = await server._queue.put(
                {"inserts": {"edge": [(4, 5)]}, "retracts": None}
            )
            await asyncio.sleep(0.05)  # writer dequeues, blocks on the gate
            queued = await server._queue.put(
                {"inserts": {"edge": [(5, 6)]}, "retracts": None}
            )
            stopper = asyncio.ensure_future(server.stop())
            await asyncio.sleep(0.05)
            gate.set()  # release the writer; stop() must wait for it
            await asyncio.wait_for(stopper, timeout=10)
            assert inflight.result().inserted > 0
            assert isinstance(queued.exception(), BackpressureError)
            assert queued.exception().code == "cancelled"
            assert queued.exception().reason == "shutdown"
            database.close()
        run(scenario())

    def test_stop_flushes_the_wal_of_the_inflight_commit(self, tmp_path):
        """A mutation committed during shutdown is recoverable: stop()
        syncs the WAL (and close checkpoints) before releasing the dir."""
        directory = str(tmp_path / "dur")
        program = build_transitive_closure_program(EDGES)

        async def scenario():
            database = Database(
                program, durability=DurabilityConfig(dir=directory)
            )
            server = QueryServer(database)
            await server.start()
            gate = threading.Event()
            server._writer_pool.submit(gate.wait)
            inflight = await server._queue.put(
                {"inserts": {"edge": [(4, 5)]}, "retracts": None}
            )
            await asyncio.sleep(0.05)
            stopper = asyncio.ensure_future(server.stop())
            await asyncio.sleep(0.05)
            gate.set()
            await asyncio.wait_for(stopper, timeout=10)
            assert inflight.result().inserted > 0
            database.close()

        run(scenario())
        reopened = Database(
            build_transitive_closure_program(EDGES),
            durability=DurabilityConfig(dir=directory),
        )
        with reopened.connect() as conn:
            assert (4, 5) in conn.query("edge")
            assert (1, 5) in conn.query("path")
        reopened.close()

    def test_group_commit_batches_a_burst_into_one_sync(self):
        """Mutations queued while the writer is busy all commit in one
        executor round with a single durable sync."""
        async def scenario():
            database = Database(build_transitive_closure_program(EDGES))
            server = QueryServer(database)
            await server.start()
            gate = threading.Event()
            server._writer_pool.submit(gate.wait)
            futures = []
            for edge in [(4, 5), (5, 6), (6, 7)]:
                futures.append(await server._queue.put(
                    {"inserts": {"edge": [edge]}, "retracts": None}
                ))
            await asyncio.sleep(0.05)  # all three drain into one batch
            gate.set()
            for future in futures:
                assert (await future).inserted > 0
            group_commits = server.metrics.counter(
                "server_group_commits_total"
            )
            assert group_commits.value >= 1
            await server.stop()
            database.close()
        run(scenario())


class TestCliSigint:
    def test_sigint_shuts_down_cleanly_and_state_recovers(self, tmp_path):
        """``python -m repro.server`` under SIGINT drains and flushes
        before exiting 0; a fresh open of the durability dir sees the
        checkpointed state."""
        program_path = tmp_path / "tc.dl"
        source = (
            "edge(1, 2).\nedge(2, 3).\n"
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
        )
        program_path.write_text(source)
        directory = str(tmp_path / "dur")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.server",
                "--program", str(program_path), "--port", "0",
                "--durability", directory,
            ],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.time() + 30
            lines = []
            while time.time() < deadline:
                line = process.stderr.readline()
                lines.append(line)
                if "listening on" in line:
                    break
            else:  # pragma: no cover - diagnostic path
                raise AssertionError(f"server never came up: {lines}")
            process.send_signal(signal.SIGINT)
            stderr = process.communicate(timeout=30)[1]
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "shutting down" in stderr
        # Same source text => same program fingerprint as the server's.
        reopened = Database(
            source, durability=DurabilityConfig(dir=directory)
        )
        with reopened.connect() as conn:
            assert conn.durability is not None
            assert (1, 3) in conn.query("path")
        reopened.close()

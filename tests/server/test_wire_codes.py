"""Wire compatibility of the error taxonomy: one stable code per failure.

Every taxonomy class serialises to the same ``{"code", "message", "reason",
"details"}`` shape the client keys its retry policy on, and the codes that
can surface over TCP actually do — through a real server, not a mock.
"""

import socket

import pytest

from repro import Database, DurabilityConfig
from repro.analyses.micro import build_transitive_closure_program
from repro.resilience.errors import TAXONOMY
from repro.resilience.faults import fault_scope
from repro.server import BlockingClient, ServerThread
from repro.server.client import ServerError
from repro.server.protocol import MAX_FRAME, decode_payload, encode_frame

EDGES = [(1, 2), (2, 3), (3, 4)]


class TestClientContract:
    @pytest.mark.parametrize("code", sorted(TAXONOMY))
    def test_every_taxonomy_code_reaches_the_client_intact(self, code):
        """The client must expose exactly the server's stable code — the
        retry policy and every caller dispatch on this string."""
        cls = TAXONOMY[code]
        wire = cls("boom", reason="why", details={"k": 1}).to_wire()
        error = ServerError(wire)
        assert error.code == code
        assert error.error["reason"] == "why"
        assert error.error["details"] == {"k": 1}
        assert str(error) == "boom"

    def test_enqueued_flag_defaults_to_unknown(self):
        wire = TAXONOMY["resource_exhausted"]("full").to_wire()
        assert ServerError(wire).enqueued is None
        assert ServerError(wire, enqueued=False).enqueued is False


class TestWireReachability:
    @pytest.fixture()
    def served(self):
        database = Database(build_transitive_closure_program(EDGES))
        with ServerThread(database) as thread:
            with BlockingClient(thread.host, thread.port) as client:
                yield thread, client
        database.close()

    def test_deadline_exceeded_over_the_wire(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            # One microsecond: expired before the first cooperative check.
            client.request({
                "op": "query", "relation": "path", "deadline_ms": 0.001,
            })
        assert excinfo.value.code == "deadline_exceeded"
        assert client.ping()  # the connection survives a typed abort

    def test_resource_exhausted_for_an_oversized_frame(self, served):
        thread, client = served
        raw = socket.create_connection((thread.host, thread.port), timeout=5)
        try:
            # A framed-mode hello followed by a declared length beyond
            # MAX_FRAME: the server answers with one typed error and
            # closes, instead of buffering an unbounded payload.
            raw.sendall(encode_frame({"op": "ping"}))
            assert _recv_frame(raw)["pong"] is True
            raw.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
            response = _recv_frame(raw)
        finally:
            raw.close()
        assert response["ok"] is False
        assert response["error"]["code"] == "resource_exhausted"
        assert client.ping()  # other connections are unaffected

    def test_durability_error_over_the_wire_and_recovery(self, tmp_path):
        durability = DurabilityConfig(dir=str(tmp_path), fsync="always")
        database = Database(
            build_transitive_closure_program(EDGES), durability=durability
        )
        with ServerThread(database) as thread:
            with BlockingClient(thread.host, thread.port) as client:
                with fault_scope("wal.fsync:fail_nth=1"):
                    with pytest.raises(ServerError) as excinfo:
                        client.insert("edge", [(4, 5)])
                    assert excinfo.value.code == "durability_error"
                    # The schedule recovered: the same write goes through
                    # and is actually durable.
                    client.insert("edge", [(4, 5)])
                    assert (1, 5) in set(client.query("path"))
        database.close()
        reopened = Database(
            build_transitive_closure_program(EDGES), durability=durability
        )
        try:
            # Recovery runs when the durable-writer connection opens.
            with reopened.connect() as conn:
                assert (1, 5) in set(conn.query("path").rows())
        finally:
            reopened.close()


def _recv_exact(sock, n):
    buffer = b""
    while len(buffer) < n:
        chunk = sock.recv(n - len(buffer))
        if not chunk:
            raise AssertionError("server closed before a full frame arrived")
        buffer += chunk
    return buffer


def _recv_frame(sock):
    length = int.from_bytes(_recv_exact(sock, 4), "big")
    return decode_payload(_recv_exact(sock, length))

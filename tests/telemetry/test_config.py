"""Unit tests for TelemetryConfig and the ``tracing()`` convenience helper."""

import io

from repro.core.config import EngineConfig
from repro.telemetry import (
    NOOP_TRACER,
    MetricsRegistry,
    TelemetryConfig,
    Tracer,
    tracing,
)
from repro.telemetry.config import metrics_of, tracer_of
from repro.telemetry.sinks import JsonLinesSink, RingBufferSink, SlowQueryLog


class TestTelemetryConfig:
    def test_enabled_config_builds_a_live_tracer_and_registry(self):
        config = TelemetryConfig()
        assert isinstance(config.tracer, Tracer)
        assert config.tracer.enabled
        assert isinstance(config.metrics, MetricsRegistry)

    def test_disabled_config_uses_the_noop_singleton(self):
        config = TelemetryConfig(enabled=False)
        assert config.tracer is NOOP_TRACER
        # The registry stays live: metrics are cheap, only spans cost.
        assert isinstance(config.metrics, MetricsRegistry)

    def test_ring_property_finds_the_ring_sink(self):
        ring = RingBufferSink(capacity=4)
        config = TelemetryConfig(sinks=(SlowQueryLog(0.0, stream=io.StringIO()), ring))
        assert config.ring is ring
        assert TelemetryConfig().ring is None

    def test_tracer_of_and_metrics_of_handle_absent_configs(self):
        assert tracer_of(None) is NOOP_TRACER
        assert tracer_of(TelemetryConfig(enabled=False)) is NOOP_TRACER
        live = TelemetryConfig()
        assert tracer_of(live) is live.tracer
        assert metrics_of(live) is live.metrics
        assert isinstance(metrics_of(None), MetricsRegistry)
        assert metrics_of(None) is not metrics_of(None)  # private defaults


class TestTracingHelper:
    def test_default_is_a_ring_buffer_only(self):
        config = tracing()
        assert config.enabled
        assert config.ring is not None
        assert config.ring.capacity == 256
        assert len(config.sinks) == 1

    def test_optional_jsonl_and_slow_query_sinks(self, tmp_path):
        stream = io.StringIO()
        config = tracing(
            ring=8,
            jsonl_path=str(tmp_path / "t.jsonl"),
            slow_query_seconds=0.5,
            stream=stream,
        )
        kinds = [type(sink) for sink in config.sinks]
        assert kinds == [RingBufferSink, JsonLinesSink, SlowQueryLog]
        slow = config.sinks[-1]
        assert slow.threshold_seconds == 0.5
        assert slow.stream is stream


class TestEngineConfigWiring:
    def test_engine_config_defaults_to_noop(self):
        assert EngineConfig().telemetry is None
        assert EngineConfig().tracer() is NOOP_TRACER

    def test_with_telemetry_selects_the_live_tracer(self):
        telemetry = tracing(ring=4)
        config = EngineConfig().with_(telemetry=telemetry)
        assert config.tracer() is telemetry.tracer
        # ``with_`` on other fields must carry the telemetry through.
        assert config.with_(executor="vectorized").tracer() is telemetry.tracer

    def test_telemetry_is_excluded_from_session_cache_keys(self):
        from repro.incremental.session import _config_cache_key

        bare = EngineConfig.interpreted()
        traced = bare.with_(telemetry=tracing(ring=4))
        assert _config_cache_key(traced) == _config_cache_key(bare)

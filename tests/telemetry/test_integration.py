"""End-to-end telemetry acceptance: traced engines, metrics agreement, layering.

The acceptance criteria of the telemetry subsystem:

* a sharded (``shards=4``) vectorized run produces ONE connected trace with
  root → stratum → iteration → operator levels, worker spans reparented
  across the pool boundary;
* ``Database.metrics()`` totals agree bit-for-bit with the differential
  oracle (query counts, result-cache probes, rows derived);
* ``explain()`` renders the most recent trace;
* engine-core modules never import :mod:`repro.telemetry.sinks` (the sinks
  do I/O; the engine layers may only see spans/metrics/config).
"""

import pathlib

import pytest

from repro import Database, EngineConfig, Program
from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import ExecutionMode
from repro.engine.engine import ExecutionEngine
from repro.telemetry import TelemetryConfig, tracing
from repro.workloads.graphs import random_edges

EDGES = random_edges(60, 80, seed=7)


def tc_program():
    return build_transitive_closure_program(EDGES)


def chain_program(n=30):
    program = Program("chain")
    edge, path = program.relations("edge", "path", arity=2)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts([(i, i + 1) for i in range(n)])
    return program


def sharded_traced_config(telemetry):
    return EngineConfig.parallel(shards=4, pool="thread").with_(
        executor="vectorized", interning=True, telemetry=telemetry,
    )


class TestConnectedShardedTrace:
    def test_query_trace_has_all_four_levels_with_one_trace_id(self):
        telemetry = tracing(ring=16)
        with Database(chain_program(), sharded_traced_config(telemetry)) as db:
            with db.connect() as conn:
                result = conn.query("path")
                trace = result.trace()

        assert trace is not None
        assert len({span.trace_id for span in trace}) == 1, "trace disconnected"
        root = trace.root
        assert root.name == "query"
        assert root.attributes["relation"] == "path"
        assert root.attributes["rows"] == result.count()

        strata = trace.find("stratum")
        assert strata, "no stratum spans"
        assert all(s.parent_id == root.span_id for s in strata)

        iterations = trace.find("iteration")
        stratum_ids = {s.span_id for s in strata}
        assert iterations, "no iteration spans"
        assert all(s.parent_id in stratum_ids for s in iterations)
        # Worker spans carry their shard id and were recorded in-shard.
        shards = {s.attributes.get("shard") for s in iterations}
        assert shards and shards <= {0, 1, 2, 3}

        operators = [s for s in trace if s.name.startswith("op:")]
        assert operators, "no operator spans"
        iteration_ids = stratum_ids | {s.span_id for s in iterations}
        assert all(s.parent_id in iteration_ids for s in operators)
        assert all(
            "rows_in" in s.attributes and "rows_out" in s.attributes
            for s in operators
        )

    def test_worker_spans_reparent_across_the_process_pool(self):
        telemetry = tracing(ring=16)
        config = EngineConfig.parallel(shards=2, pool="process").with_(
            executor="vectorized", telemetry=telemetry,
        )
        with Database(chain_program(12), config) as db, db.connect() as conn:
            trace = conn.query("path").trace()
        assert trace is not None
        by_id = {span.span_id: span for span in trace}
        # Connected: every span's parent chain reaches the root.
        for span in trace:
            assert trace.depth_of(span) == 0 or span.parent_id in by_id

    def test_mutation_trace_covers_dred_phases(self):
        telemetry = tracing(ring=16)
        config = EngineConfig.interpreted().with_(
            executor="vectorized", telemetry=telemetry,
        )
        with Database(chain_program(), config) as db, db.connect() as conn:
            conn.query("path")
            conn.retract_facts("edge", [(3, 4)])
            trace = conn.session.last_trace
        assert trace.root.name == "mutation"
        assert trace.root.attributes["retracted"] == 1
        names = {span.name for span in trace}
        assert "dred:over-delete" in names
        assert "dred:rederive" in names


class TestMetricsAgreement:
    def test_totals_agree_with_the_differential_oracle(self):
        program = tc_program()
        oracle = ExecutionEngine(
            build_transitive_closure_program(EDGES), EngineConfig.interpreted()
        )
        oracle_rows = oracle.evaluate()["path"].to_set()
        oracle_derived = sum(
            record.promoted for record in oracle.profile.iterations
        )

        telemetry = tracing(ring=16)
        with Database(program, sharded_traced_config(telemetry)) as db:
            with db.connect() as conn:
                queries = 0
                first = conn.query("path")
                queries += 1
                assert first.to_set() == oracle_rows
                for _ in range(3):
                    conn.query("path")
                    queries += 1
            snapshot = db.metrics()

        assert snapshot["queries_total"] == queries
        assert snapshot["rows_derived_total"] == oracle_derived
        # Result-cache metrics mirror the cache's own counters bit-for-bit.
        assert snapshot["result_cache_total{result=hit}"] == db.cache.stats.hits
        assert (
            snapshot["result_cache_total{result=miss}"] == db.cache.stats.misses
        )
        assert snapshot["relation_rows{relation=path}"] == len(oracle_rows)

    def test_one_shot_queries_also_feed_the_database_registry(self):
        with Database(chain_program(), EngineConfig.interpreted()) as db:
            db.query("path")
            db.query("path")
            snapshot = db.metrics()
        assert snapshot["queries_total"] == 2
        assert snapshot["rows_derived_total"] > 0
        assert snapshot["query_seconds"]["count"] == 2

    def test_shared_registry_is_not_double_counted_for_one_shot(self):
        telemetry = tracing(ring=4)
        config = EngineConfig.interpreted().with_(telemetry=telemetry)
        with Database(chain_program(12), config) as db:
            db.query("path")
            derived = db.metrics()["rows_derived_total"]
            oracle = ExecutionEngine(
                chain_program(12).datalog, EngineConfig.interpreted()
            )
            oracle.evaluate()
            expected = sum(r.promoted for r in oracle.profile.iterations)
        assert derived == expected

    def test_exporters_on_database(self):
        with Database(chain_program(12), EngineConfig.interpreted()) as db:
            db.query("path")
            prometheus = db.metrics_prometheus()
            json_text = db.metrics_json()
        assert "# TYPE repro_queries_total counter" in prometheus
        assert "repro_queries_total 1" in prometheus
        import json

        assert json.loads(json_text)["queries_total"] == 1


class TestSurfaces:
    def test_untraced_results_have_no_trace(self):
        with Database(chain_program(12), EngineConfig.interpreted()) as db:
            with db.connect() as conn:
                assert conn.query("path").trace() is None
            assert db.query("path").trace() is None

    def test_noop_telemetry_still_counts_metrics(self):
        config = EngineConfig.interpreted().with_(
            telemetry=TelemetryConfig(enabled=False)
        )
        with Database(chain_program(12), config) as db, db.connect() as conn:
            assert conn.query("path").trace() is None
            assert db.metrics()["queries_total"] == 1

    def test_explain_renders_the_most_recent_trace(self):
        telemetry = tracing(ring=8)
        config = EngineConfig.interpreted().with_(
            executor="vectorized", telemetry=telemetry,
        )
        with Database(chain_program(12), config) as db, db.connect() as conn:
            conn.query("path")
            text = conn.explain("path")
        assert "trace (most recent):" in text
        assert "query (" in text
        assert "stratum (" in text

    def test_resultset_trace_matches_queryresult_trace(self):
        telemetry = tracing(ring=8)
        config = EngineConfig.interpreted().with_(telemetry=telemetry)
        with Database(chain_program(12), config) as db, db.connect() as conn:
            results = conn.query()
            assert results.trace() is not None
            assert results.trace().root.attributes["relation"] == "*"


ENGINE_CORE_PACKAGES = (
    "core", "engine", "incremental", "parallel", "relational", "ir",
    "datalog", "api",
)


def test_engine_core_never_imports_sink_modules():
    """The layering rule the CI grep guard enforces, pinned as a test."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    offenders = []
    for package in ENGINE_CORE_PACKAGES:
        for path in (src / package).rglob("*.py"):
            text = path.read_text(encoding="utf-8")
            if "telemetry.sinks" in text or "telemetry import sinks" in text:
                offenders.append(str(path))
    assert not offenders, f"engine-core imports telemetry.sinks: {offenders}"

"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.core.profile import RuntimeProfile
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import LATENCY_BUCKETS


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_increments(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("relation_rows", relation="path")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        export = histogram.export()
        assert export["count"] == 4
        assert export["sum"] == pytest.approx(55.55)
        assert export["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 3}

    def test_default_latency_buckets_cover_sub_ms_to_tens_of_seconds(self):
        assert LATENCY_BUCKETS[0] <= 0.001
        assert LATENCY_BUCKETS[-1] >= 10.0

    def test_same_name_same_labels_is_the_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", relation="path")
        b = registry.counter("hits", relation="path")
        c = registry.counter("hits", relation="edge")
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestProfileFolding:
    def test_absorb_profile_maps_every_counter_family(self):
        profile = RuntimeProfile()
        profile.record_iteration(0, 1, 10, None, 0.0)
        profile.record_iteration(0, 2, 5, None, 0.0)
        profile.sources.vectorized = 4
        profile.sources.interpreted = 2
        profile.block_joins["batches"] = 6
        profile.result_sizes["path"] = 15
        profile.record_cache_probes(3, 1)
        profile.pool_degradations = 1
        registry = MetricsRegistry()
        registry.absorb_profile(profile)
        snapshot = registry.snapshot()
        assert snapshot["engine_iterations_total"] == 2
        assert snapshot["rows_derived_total"] == 15
        assert snapshot["subqueries_total{source=vectorized}"] == 4
        assert snapshot["subqueries_total{source=interpreted}"] == 2
        assert snapshot["vectorized_batches_total{kind=batches}"] == 6
        assert snapshot["relation_rows{relation=path}"] == 15
        assert snapshot["snapshot_cache_total{result=hit}"] == 3
        assert snapshot["snapshot_cache_total{result=miss}"] == 1
        assert snapshot["pool_degradations_total"] == 1

    def test_absorb_adds_counters_but_sets_gauges(self):
        registry = MetricsRegistry()
        for rows in (10, 4):
            profile = RuntimeProfile()
            profile.record_iteration(0, 1, rows, None, 0.0)
            profile.result_sizes["path"] = rows
            registry.absorb_profile(profile)
        snapshot = registry.snapshot()
        assert snapshot["rows_derived_total"] == 14  # added
        assert snapshot["relation_rows{relation=path}"] == 4  # last wins


class TestExporters:
    def filled(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(2)
        registry.counter("result_cache_total", result="hit").inc()
        registry.gauge("symbol_table_size").set(30)
        registry.histogram("query_seconds", buckets=(0.1, 1.0)).observe(0.05)
        return registry

    def test_snapshot_keys_are_stable_and_label_sorted(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc()
        assert list(registry.snapshot()) == ["c{a=1,b=2}"]

    def test_to_json_is_valid_and_matches_snapshot(self):
        registry = self.filled()
        assert json.loads(registry.to_json()) == json.loads(
            json.dumps(registry.snapshot(), default=str)
        )

    def test_prometheus_text_format(self):
        text = self.filled().to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_queries_total counter" in lines
        assert "repro_queries_total 2" in lines
        assert 'repro_result_cache_total{result="hit"} 1' in lines
        assert "# TYPE repro_symbol_table_size gauge" in lines
        assert "repro_symbol_table_size 30" in lines
        assert 'repro_query_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_query_seconds_count 1" in lines
        # One TYPE line per family, even with several labelled children.
        assert text.count("# TYPE repro_result_cache_total") == 1


class TestHistogramQuantiles:
    def test_quantiles_interpolate_within_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(10.0, 20.0, 30.0))
        for value in range(1, 21):   # uniform 1..20
            histogram.observe(float(value))
        # p50: target rank 10 of 20 lands exactly at the 10.0 bound.
        assert histogram.quantile(0.5) == pytest.approx(10.0)
        # p95: rank 19 sits in the (10, 20] bucket, 9/10 of the way through.
        assert histogram.quantile(0.95) == pytest.approx(19.0)
        assert histogram.quantile(1.0) == pytest.approx(20.0)

    def test_quantile_beyond_last_bound_clamps(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == pytest.approx(1.0)

    def test_empty_histogram_quantile_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("h", buckets=(1.0,)).quantile(0.95) == 0.0

    def test_quantile_validates_range(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_export_includes_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        export = histogram.export()
        assert set(export) >= {"count", "sum", "p50", "p95", "p99"}

    def test_prometheus_emits_summary_quantile_lines(self):
        registry = MetricsRegistry()
        registry.histogram("query_seconds", buckets=(0.1, 1.0)).observe(0.05)
        lines = registry.to_prometheus().splitlines()
        assert any(
            line.startswith('repro_query_seconds{quantile="0.5"}')
            for line in lines
        )
        assert any('quantile="0.95"' in line for line in lines)
        assert any('quantile="0.99"' in line for line in lines)


class TestRegistryRows:
    def test_rows_cover_every_series_with_kind(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        registry.gauge("symbol_table_size").set(7)
        registry.histogram("query_seconds", buckets=(1.0,)).observe(0.5)
        rows = registry.rows()
        as_map = {(name, labels, kind): value
                  for name, labels, kind, value in rows}
        assert as_map[("queries_total", "", "counter")] == 3.0
        assert as_map[("symbol_table_size", "", "gauge")] == 7.0
        assert as_map[("query_seconds", "", "histogram_count")] == 1.0
        assert ("query_seconds", "", "histogram_p95") in as_map

    def test_rows_render_labels_like_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc()
        ((name, labels, kind, value),) = registry.rows()
        assert (name, labels, kind, value) == ("c", "a=1,b=2", "counter", 1.0)

"""Unit tests for the span sinks, including the slow-query log format."""

import io
import json

import pytest

from repro.telemetry import (
    JsonLinesSink,
    RingBufferSink,
    SlowQueryLog,
    Tracer,
    format_slow_query,
)


def finished_trace(sinks, name="query", duration_ns=5_000_000, **attrs):
    """One finished single-span trace, its duration pinned after assembly."""
    tracer = Tracer(sinks=sinks)
    span = tracer.span(name, root=True, **attrs)
    span.finish()
    span.end_ns = span.start_ns + duration_ns
    return span.trace


class TestRingBufferSink:
    def test_keeps_the_last_n_traces(self):
        ring = RingBufferSink(capacity=2)
        traces = [finished_trace([ring]) for _ in range(3)]
        assert len(ring) == 2
        assert ring.traces() == traces[1:]
        assert ring.latest() is traces[-1]

    def test_clear_and_empty(self):
        ring = RingBufferSink(capacity=4)
        assert ring.latest() is None
        finished_trace([ring])
        ring.clear()
        assert len(ring) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonLinesSink:
    def test_appends_one_json_document_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonLinesSink(str(path))
        first = finished_trace([sink], relation="path")
        second = finished_trace([sink], relation="edge")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        assert payloads[0]["trace_id"] == first.trace_id
        assert payloads[1]["spans"][0]["attributes"] == {"relation": "edge"}


class TestSlowQueryFormat:
    def test_single_line_with_every_field(self):
        trace = finished_trace(
            [], duration_ns=12_345_000,
            program="abcdef012345", relation="path", rows=99, cache="hit",
        )
        line = format_slow_query(trace)
        assert "\n" not in line
        assert line == (
            f"slow-query trace={trace.trace_id} program=abcdef012345 "
            "relation=path latency_ms=12.345 rows=99 cache=hit spans=1"
        )

    def test_missing_attributes_get_placeholders(self):
        trace = finished_trace([], duration_ns=1_000_000)
        line = format_slow_query(trace)
        assert " program=? " in line
        assert " relation=* " in line
        assert " rows=? " in line
        assert " cache=none " in line


class TestSlowQueryLog:
    def test_exactly_at_threshold_is_logged(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.005, stream=stream)
        log.export(finished_trace([], duration_ns=5_000_000))
        assert log.emitted == 1
        assert stream.getvalue().startswith("slow-query trace=")

    def test_just_below_threshold_is_not_logged(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.005, stream=stream)
        log.export(finished_trace([], duration_ns=4_999_999))
        assert log.emitted == 0
        assert stream.getvalue() == ""

    def test_zero_threshold_logs_everything(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream)
        log.export(finished_trace([], duration_ns=1))
        assert log.emitted == 1

    def test_non_query_roots_are_ignored(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream)
        log.export(finished_trace([], name="mutation", duration_ns=10**9))
        assert log.emitted == 0
        assert stream.getvalue() == ""

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-0.001)

    def test_attached_as_a_tracer_sink(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream)
        tracer = Tracer(sinks=[log])
        with tracer.span("query", root=True, relation="path", rows=3):
            pass
        assert log.emitted == 1
        assert " relation=path " in stream.getvalue()


class TestSlowMutationFormat:
    def test_mutation_root_gets_the_mutation_shape(self):
        trace = finished_trace(
            [], name="mutation", program="fp12", strategy="incremental",
            inserted=5, retracted=2, propagated=9, rederived=1,
            over_deleted=3,
        )
        line = format_slow_query(trace)
        assert line.startswith("slow-mutation ")
        assert "strategy=incremental" in line
        assert "inserted=5" in line
        assert "retracted=2" in line
        assert "propagated=9" in line
        assert "rederived=1" in line
        assert "over_deleted=3" in line
        assert "latency_ms=5.000" in line

    def test_session_mutations_log_strategy_and_dred_counts(self):
        from repro import Database, EngineConfig
        from repro.telemetry import TelemetryConfig

        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream, root_names=("mutation",))
        config = EngineConfig().with_(
            telemetry=TelemetryConfig(sinks=(log,))
        )
        source = "path(x, y) :- edge(x, y).\nedge(1, 2)."
        with Database(source, config) as db, db.connect() as conn:
            conn.insert_facts("edge", [(2, 3)])
            conn.retract_facts("edge", [(1, 2)])
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("slow-mutation ") for line in lines)
        assert "strategy=incremental" in lines[0]
        assert "inserted=1" in lines[0]
        assert "retracted=1" in lines[1]
        assert "over_deleted=" in lines[1]
        assert "rederived=" in lines[1]


class TestQuerySummaryRows:
    def test_one_row_per_query_trace_with_catalog_columns(self):
        ring = RingBufferSink(capacity=8)
        trace = finished_trace(
            [ring], name="query", duration_ns=2_000_000,
            program="abcdef123456", relation="path", rows=7, cache="miss",
        )
        finished_trace([ring], name="mutation", program="abcdef123456")
        rows = ring.query_rows()
        assert rows == [(
            trace.trace_id, "abcdef123456", "path", 2_000, 7, "miss",
        )]

    def test_missing_attributes_get_typed_placeholders(self):
        ring = RingBufferSink(capacity=8)
        trace = finished_trace([ring], name="query")
        ((trace_id, program, relation, latency, rows, cache),) = (
            ring.query_rows()
        )
        assert (program, relation, rows, cache) == ("?", "*", -1, "none")
        assert trace_id == trace.trace_id
        assert latency == 5_000

"""Unit tests for the tracing core: Tracer, Span, Trace, SpanBuffer."""

import json
import pickle

import pytest

from repro.telemetry import NOOP_TRACER, SpanBuffer, Tracer, current_span
from repro.telemetry.sinks import RingBufferSink


def make_traced():
    ring = RingBufferSink(capacity=8)
    return Tracer(sinks=[ring]), ring


class TestSpanLifecycle:
    def test_root_span_assembles_a_trace_on_finish(self):
        tracer, ring = make_traced()
        span = tracer.span("query", root=True, relation="path")
        assert span.trace is None
        span.finish()
        assert span.trace is not None
        assert span.trace.root is span
        assert ring.latest() is span.trace

    def test_finish_is_idempotent(self):
        tracer, ring = make_traced()
        span = tracer.span("query", root=True)
        span.finish()
        end = span.end_ns
        span.finish()
        assert span.end_ns == end
        assert len(ring) == 1

    def test_ambient_parenting_nests_without_explicit_handles(self):
        tracer, ring = make_traced()
        with tracer.span("query", root=True) as root:
            assert current_span() is root
            with tracer.span("stratum", index=0) as stratum:
                child = tracer.span("iteration")
                child.finish()
            assert child.parent_id == stratum.span_id
            assert stratum.parent_id == root.span_id
        assert current_span() is None
        trace = ring.latest()
        assert [s.name for s in trace] == ["query", "stratum", "iteration"]
        assert len({s.trace_id for s in trace}) == 1

    def test_non_ambient_span_does_not_become_current(self):
        tracer, _ = make_traced()
        with tracer.span("query", root=True) as root:
            leaf = tracer.span("op:join", ambient=False)
            assert current_span() is root
            leaf.finish()
            assert leaf.parent_id == root.span_id
            root.finish()

    def test_root_true_starts_a_fresh_trace_under_an_open_span(self):
        tracer, _ = make_traced()
        with tracer.span("query", root=True) as outer:
            inner = tracer.span("mutation", root=True)
            assert inner.trace_id != outer.trace_id
            assert inner.parent_id is None
            inner.finish()

    def test_exception_marks_error_status(self):
        tracer, ring = make_traced()
        with pytest.raises(ValueError):
            with tracer.span("query", root=True):
                raise ValueError("boom")
        trace = ring.latest()
        assert trace.root.status == "error:ValueError"

    def test_set_returns_self_and_events_record(self):
        tracer, ring = make_traced()
        span = tracer.span("query", root=True)
        assert span.set(rows=7) is span
        span.event("result-cache", result="hit")
        tracer.event("ambient-event", note=1)  # attaches to current span
        span.finish()
        assert span.attributes["rows"] == 7
        names = [name for name, _, _ in span.events]
        assert names == ["result-cache", "ambient-event"]

    def test_to_json_round_trips(self):
        tracer, ring = make_traced()
        with tracer.span("query", root=True, relation="path"):
            pass
        payload = json.loads(ring.latest().to_json())
        assert payload["spans"][0]["name"] == "query"
        assert payload["spans"][0]["attributes"] == {"relation": "path"}


class TestTraceReading:
    def test_render_indents_by_depth(self):
        tracer, ring = make_traced()
        with tracer.span("query", root=True):
            with tracer.span("stratum", index=0):
                tracer.span("iteration", ambient=False).finish()
        lines = ring.latest().render().splitlines()
        assert lines[1].startswith("  query")
        assert lines[2].startswith("    stratum")
        assert "index=0" in lines[2]
        assert lines[3].startswith("      iteration")

    def test_find_children_depth(self):
        tracer, ring = make_traced()
        with tracer.span("query", root=True):
            with tracer.span("stratum"):
                tracer.span("iteration", ambient=False).finish()
                tracer.span("iteration", ambient=False).finish()
        trace = ring.latest()
        (stratum,) = trace.find("stratum")
        iterations = trace.find("iteration")
        assert trace.children_of(stratum) == iterations
        assert trace.depth_of(trace.root) == 0
        assert {trace.depth_of(s) for s in iterations} == {2}


class TestNoopTracer:
    def test_disabled_and_allocation_free(self):
        assert NOOP_TRACER.enabled is False
        span = NOOP_TRACER.span("query", root=True, rows=1)
        assert span is NOOP_TRACER.span("other")
        assert span.noop and span.trace is None
        # The full recording surface is inert.
        with span as s:
            assert s.set(x=1) is s
            s.event("nope")
            s.finish()
        assert NOOP_TRACER.merge_buffer([{"span_id": 1}], parent=span) == []

    def test_noop_span_never_becomes_ambient_parent(self):
        tracer, ring = make_traced()
        with NOOP_TRACER.span("outer"):
            span = tracer.span("query")  # must start its own trace
            assert span.parent_id is None
            span.finish()
        assert ring.latest().root is span


class TestSpanBufferAndMerge:
    def drained_worker_records(self):
        buffer = SpanBuffer()
        with buffer.span("iteration", shard=0, round=1):
            buffer.span("op:join", ambient=False, rows_in=3).set(rows_out=5).finish()
        with buffer.span("iteration", shard=0, round=2) as it2:
            it2.set(promoted=4)
        return buffer.drain()

    def test_records_are_picklable_dicts(self):
        records = self.drained_worker_records()
        assert pickle.loads(pickle.dumps(records)) == records
        assert [r["name"] for r in records] == [
            "iteration", "op:join", "iteration",
        ]
        assert records[1]["parent_id"] == records[0]["span_id"]
        assert records[2]["parent_id"] is None
        assert records[2]["attributes"]["promoted"] == 4

    def test_drain_resets_the_buffer(self):
        buffer = SpanBuffer()
        buffer.span("iteration", ambient=False).finish()
        assert len(buffer.drain()) == 1
        assert buffer.drain() == []

    def test_merge_reparents_buffer_roots_and_remaps_ids(self):
        tracer, ring = make_traced()
        records = self.drained_worker_records()
        with tracer.span("query", root=True):
            with tracer.span("stratum", index=0) as stratum:
                merged = tracer.merge_buffer(records, parent=stratum)
        trace = ring.latest()
        assert len(trace) == 2 + len(records)
        iterations = trace.find("iteration")
        assert all(s.parent_id == stratum.span_id for s in iterations)
        assert all(s.trace_id == trace.trace_id for s in merged)
        (join,) = trace.find("op:join")
        assert join.parent_id == iterations[0].span_id
        # Worker-local ids were remapped into the coordinator's id space.
        coordinator_ids = {s.span_id for s in trace}
        assert len(coordinator_ids) == len(trace)

    def test_merge_without_parent_is_dropped(self):
        tracer, _ = make_traced()
        assert tracer.merge_buffer(self.drained_worker_records()) == []

    def test_buffered_span_error_status_survives_merge(self):
        tracer, ring = make_traced()
        buffer = SpanBuffer()
        with pytest.raises(RuntimeError):
            with buffer.span("iteration", shard=1):
                raise RuntimeError("shard died")
        with tracer.span("query", root=True) as root:
            tracer.merge_buffer(buffer.drain(), parent=root)
        (iteration,) = ring.latest().find("iteration")
        assert iteration.status == "error:RuntimeError"


class TestTabularViews:
    def build_trace(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=(ring,))
        with tracer.span("query", root=True, relation="path") as root:
            with tracer.span("stratum", index=0):
                pass
        return ring.latest()

    def test_span_rows_one_per_span_with_minus_one_root_parent(self):
        trace = self.build_trace()
        rows = trace.span_rows()
        assert len(rows) == len(trace.spans)
        by_id = {row[0]: row for row in rows}
        root = trace.root
        assert by_id[root.span_id][1] == -1
        child = next(s for s in trace.spans if s.parent_id is not None)
        assert by_id[child.span_id][1] == root.span_id
        for span in trace.spans:
            row = by_id[span.span_id]
            assert row[2:] == (
                trace.trace_id, span.name, span.start_ns, span.duration_ns,
            )

    def test_attr_rows_stringify_values_and_sort_keys(self):
        trace = self.build_trace()
        rows = trace.attr_rows()
        assert (trace.root.span_id, "relation", "path") in rows
        child = next(s for s in trace.spans if s.parent_id is not None)
        assert (child.span_id, "index", "0") in rows
        per_span = {}
        for span_id, key, value in rows:
            per_span.setdefault(span_id, []).append(key)
            assert isinstance(value, str)
        for keys in per_span.values():
            assert keys == sorted(keys)

"""Unit tests for graph generators, fact generators and the dataset registry."""

import pytest

from repro.workloads.datasets import get_dataset, get_spec, list_datasets
from repro.workloads.graphs import (
    chain_edges,
    dag_edges,
    random_edges,
    scale_free_edges,
    tree_edges,
)
from repro.workloads.program_facts import (
    CSDADataset,
    CSPADataset,
    HttpdLikeGenerator,
    SListLibGenerator,
)


class TestGraphGenerators:
    def test_chain(self):
        edges = chain_edges(3)
        assert edges == [(0, 1), (1, 2), (2, 3)]

    def test_tree_edge_count(self):
        edges = tree_edges(depth=3, fanout=2)
        assert len(edges) == 2 + 4 + 8

    def test_random_edges_deterministic_and_distinct(self):
        first = random_edges(20, 50, seed=1)
        second = random_edges(20, 50, seed=1)
        different = random_edges(20, 50, seed=2)
        assert first == second
        assert first != different
        assert len(first) == len(set(first)) == 50
        assert all(a != b for a, b in first)

    def test_random_edges_capped_at_complete_graph(self):
        edges = random_edges(3, 100, seed=0)
        assert len(edges) == 6

    def test_dag_edges_are_acyclic_by_construction(self):
        edges = dag_edges(30, 100, seed=3)
        assert all(a < b for a, b in edges)

    def test_scale_free_has_hubs(self):
        edges = scale_free_edges(200, 600, seed=4, hub_fraction=0.05)
        indegree = {}
        for _, target in edges:
            indegree[target] = indegree.get(target, 0) + 1
        top = max(indegree.values())
        average = sum(indegree.values()) / len(indegree)
        assert top > 5 * average


class TestProgramFactGenerators:
    def test_cspa_dataset_size_and_determinism(self):
        generator = HttpdLikeGenerator(seed=2024)
        first = generator.cspa(tuples=200)
        second = HttpdLikeGenerator(seed=2024).cspa(tuples=200)
        assert first.fact_count() == pytest.approx(200, abs=5)
        assert first.as_dict() == second.as_dict()

    def test_cspa_rejects_tiny_request(self):
        with pytest.raises(ValueError):
            HttpdLikeGenerator().cspa(tuples=5)

    def test_csda_dataset(self):
        dataset = HttpdLikeGenerator(seed=1).csda(tuples=500)
        assert isinstance(dataset, CSDADataset)
        assert dataset.fact_count() > 400
        assert all(a < b for a, b in dataset.edge)
        assert len(dataset.null_source) >= 1

    def test_slistlib_contains_round_trip(self):
        dataset = SListLibGenerator(seed=7).generate(list_length=10, extra_pipelines=1)
        functions_called = {f for (_, f, _, _) in dataset.call}
        assert {"serialize", "deserialize"} <= functions_called
        assert ("deserialize", "serialize") in dataset.inverse_functions
        assert dataset.used_at, "the restored value must be used somewhere"

    def test_slistlib_scales_with_pipelines(self):
        small = SListLibGenerator(seed=7).generate(list_length=10, extra_pipelines=1)
        large = SListLibGenerator(seed=7).generate(list_length=10, extra_pipelines=6)
        assert large.fact_count() > small.fact_count()

    def test_slistlib_fact_dicts_have_expected_relations(self):
        dataset = SListLibGenerator().generate()
        assert set(dataset.andersen_facts()) == {"addressOf", "assign", "load", "store"}
        assert "invFuns" in dataset.inverse_function_facts()


class TestDatasetRegistry:
    def test_list_and_get(self):
        names = list_datasets()
        assert "cspa_tiny" in names and "slistlib" in names
        dataset = get_dataset("cspa_tiny")
        assert isinstance(dataset, CSPADataset)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            get_dataset("nope")
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_spec_description(self):
        assert "CSPA" in get_spec("cspa_tiny").description

    def test_datasets_are_rebuilt_fresh(self):
        first = get_dataset("slistlib")
        second = get_dataset("slistlib")
        assert first is not second
        assert first.fact_count() == second.fact_count()
